// Package serve is the optimizer-as-a-service layer: an HTTP handler
// that accepts queries (JSON interchange format or the textual DSL),
// fingerprints them canonically (internal/fingerprint), consults the
// sharded plan cache (internal/plancache), and on a miss runs the
// anytime optimizer (core.Optimizer.RunContext) under a per-request
// deadline and a server-wide weighted concurrency limiter.
//
// Contract, request by request:
//
//   - POST /optimize: the body (size-capped; oversized bodies get 413)
//     is parsed, canonicalized and fingerprinted. A cache hit returns
//     immediately. A miss acquires join-weighted capacity from the
//     limiter — queueing with a ctx-aware acquire, shedding with
//     503 + Retry-After when the queue deadline passes — and runs the
//     optimizer on the *canonical* relabeling of the query, so the
//     resulting plan (and the cached entry) is a pure function of
//     (fingerprint, seed, budget). Concurrent duplicate requests
//     coalesce onto one optimizer run via the cache's singleflight
//     layer; coalesced waiters still honor their own deadlines.
//     Responses carry the anytime contract (degraded, degradeReason,
//     budgetUsed) plus cacheHit, coalesced, and the fingerprint.
//   - GET /statusz: cache stats, in-flight counts, limiter occupancy,
//     durability counters and uptime as JSON.
//   - GET /healthz, /livez: 200 ok (load-balancer liveness: the
//     process is up and serving HTTP).
//   - GET /readyz: readiness. 503 while startup recovery (journal
//     replay) is still in progress and for a short window after the
//     limiter sheds a request — a recovering or overloaded daemon
//     should stop receiving new traffic without being killed.
//
// Durability: with Config.Persist set, every admitted plan is
// journaled through internal/persist and the cache is snapshotted
// periodically and at drain (Flush), so a restart serves byte-identical
// plans for previously cached fingerprints instead of triggering a
// cold re-optimization storm.
//
// Graceful shutdown is the daemon's job (RunDaemon / cmd/ljqd drains
// in-flight work via http.Server.Shutdown, then flushes a final
// snapshot); the handler itself is stateless between requests apart
// from the cache.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/fingerprint"
	"joinopt/internal/greedy"
	"joinopt/internal/persist"
	"joinopt/internal/plan"
	"joinopt/internal/plancache"
	"joinopt/internal/qdsl"
	"joinopt/internal/qfile"
	"joinopt/internal/telemetry"
	"joinopt/internal/wire"
)

// Config tunes a Server. The zero value selects production-ish
// defaults (IAI, memory model, t=9, 1 MiB bodies, 256 join-units of
// concurrency, 1s queue deadline, 30s request deadline).
type Config struct {
	// Method is the optimization strategy (default IAI, the paper's
	// overall winner).
	Method core.Method
	// Model prices joins (default the memory model). Models must be
	// stateless/goroutine-safe, as the stock ones are.
	Model cost.Model
	// TCoeff is the budget coefficient: each optimization gets
	// t·N²·UnitScale work units (default 9, the paper's convergence
	// point).
	TCoeff float64
	// Seed seeds each optimization. Together with canonical-form
	// optimization it makes the served plan a deterministic function
	// of the fingerprint (default 1).
	Seed int64
	// MaxBodyBytes caps request bodies; oversized requests get 413
	// (default 1 MiB).
	MaxBodyBytes int64
	// MaxInFlightJoins is the limiter capacity in join units: the sum
	// of join counts of concurrently-optimizing requests (default 256).
	MaxInFlightJoins int64
	// QueueTimeout bounds how long a request may wait for limiter
	// capacity before being shed with 503 (default 1s).
	QueueTimeout time.Duration
	// RequestTimeout bounds one optimization end to end; the anytime
	// optimizer returns its incumbent (flagged degraded) at the
	// deadline (default 30s).
	RequestTimeout time.Duration
	// Cache configures the plan cache; ignored if CacheHandle is set.
	Cache plancache.Config
	// CacheHandle injects a prebuilt cache (shared across servers, or
	// instrumented in tests).
	CacheHandle *plancache.Cache
	// Metrics, if non-nil, receives the server's and cache's counters
	// and a budget-consumption histogram, and enables the GET /metrics
	// endpoint (Prometheus text exposition). nil disables both — the
	// hot path then carries no metrics overhead beyond the existing
	// atomics.
	Metrics *telemetry.Registry
	// Persist, if non-nil, is the durability manager bound to the
	// cache (internal/persist): its recovery and journal counters are
	// exposed on /statusz and /metrics, and Flush snapshots through it
	// at drain. The manager must be bound to the same cache passed via
	// CacheHandle.
	Persist *persist.Manager
	// ReadinessShedWindow is how long /readyz keeps answering 503
	// after the limiter sheds a request (default 5s; load balancers
	// should back off an overloaded daemon rather than pile on).
	ReadinessShedWindow time.Duration
	// MaxBatchItems caps how many queries one POST /optimize/batch may
	// carry (default 64). The cap bounds the fan-out a single request
	// can demand from the limiter, not the response size: each unique
	// shape in the batch still queues for join-weighted capacity.
	MaxBatchItems int
	// Tiered enables the tiered planning ladder: a cache miss is served
	// immediately from the Tier-1 greedy planner (internal/greedy) and
	// the cached entry is upgraded in the background by the full anytime
	// search, warm-started from the greedy order. Off by default: the
	// zero Config keeps the classic synchronous full-search path.
	Tiered bool
	// GreedyThreshold is the Tier-1 escalation ceiling: a greedy plan
	// whose estimated total cost meets or exceeds it is not served;
	// the miss runs the full search synchronously instead (default
	// greedy.DefaultThreshold; <= 0 disables cost-based escalation —
	// non-finite greedy costs always escalate).
	GreedyThreshold float64
	// UpgradeTCoeff is the budget coefficient for background Tier-2
	// upgrades (default: TCoeff). Operators raise it to spend more
	// search off the latency path than they would synchronously.
	UpgradeTCoeff float64
	// UpgradeConcurrency caps concurrently-running background upgrades
	// (default 2); queued upgrades wait without holding limiter
	// capacity away from foreground requests.
	UpgradeConcurrency int
	// ArcPushMaxBytes caps one POST /snapshot/arc payload (default
	// 64 MiB, matching the warm-start fetch cap): a confused pusher
	// must not balloon this peer's memory.
	ArcPushMaxBytes int64
}

func (c *Config) fill() {
	if c.Model == nil {
		c.Model = cost.NewMemoryModel()
	}
	if c.TCoeff <= 0 {
		c.TCoeff = 9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxInFlightJoins <= 0 {
		c.MaxInFlightJoins = 256
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ReadinessShedWindow <= 0 {
		c.ReadinessShedWindow = 5 * time.Second
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.GreedyThreshold == 0 {
		c.GreedyThreshold = greedy.DefaultThreshold
	}
	if c.UpgradeTCoeff <= 0 {
		c.UpgradeTCoeff = c.TCoeff
	}
	if c.UpgradeConcurrency <= 0 {
		c.UpgradeConcurrency = 2
	}
	if c.ArcPushMaxBytes <= 0 {
		c.ArcPushMaxBytes = 64 << 20
	}
}

// errShed marks a request dropped by the limiter's queue deadline.
var errShed = errors.New("serve: optimization capacity exhausted")

// Server is the optimizer service. Create with New; serve via Handler.
type Server struct {
	cfg     Config
	cache   *plancache.Cache
	sem     *semaphore
	start   time.Time
	persist *persist.Manager  // nil when persistence is off
	tiers   *tierOrchestrator // nil when Config.Tiered is off

	inFlight  atomic.Int64  // HTTP requests inside /optimize
	optimizes atomic.Uint64 // optimizer runs started (cache misses that won capacity)
	shed      atomic.Uint64 // 503s issued by the limiter
	batches   atomic.Uint64 // POST /optimize/batch requests accepted
	snapships atomic.Uint64 // GET /snapshot payloads served (warm-start donations)

	arcPushes    atomic.Uint64 // POST /snapshot/arc payloads accepted
	arcEntries   atomic.Uint64 // entries warmed from accepted arc pushes
	arcRejected  atomic.Uint64 // arc pushes refused (bad method/payload/size)
	arcPushBytes atomic.Uint64 // payload bytes accepted via /snapshot/arc

	// notReady is the readiness latch: nonzero while journal replay
	// (or any other startup work) is still in progress. Inverted so
	// the zero value of Server-built-by-New is "ready".
	notReady atomic.Bool
	// lastShedNano is the wall-clock of the most recent limiter shed;
	// /readyz answers 503 within ReadinessShedWindow of it.
	lastShedNano atomic.Int64

	metrics     *telemetry.Registry
	budgetUsedH *telemetry.Histogram // work units consumed per optimizer run
}

// New builds a server.
func New(cfg Config) *Server {
	cfg.fill()
	cache := cfg.CacheHandle
	if cache == nil {
		cache = plancache.New(cfg.Cache)
	}
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		sem:     newSemaphore(cfg.MaxInFlightJoins),
		persist: cfg.Persist,
		//ljqlint:allow detrand -- serving-layer uptime bookkeeping; the seeded optimizer trajectory never observes it
		start: time.Now(),
	}
	if cfg.Tiered {
		s.tiers = newTierOrchestrator(s)
	}
	if reg := cfg.Metrics; reg != nil {
		s.metrics = reg
		reg.CounterFunc("ljq_optimizations_total", "Optimizer runs started (cache misses that won limiter capacity).", s.optimizes.Load)
		reg.CounterFunc("ljq_shed_total", "Requests shed with 503 by the concurrency limiter.", s.shed.Load)
		reg.CounterFunc("ljq_batch_requests_total", "Accepted POST /optimize/batch requests.", s.batches.Load)
		reg.CounterFunc("ljq_snapshot_served_total", "Warm-start snapshots served from GET /snapshot.", s.snapships.Load)
		reg.CounterFunc("ljq_arc_push_received_total", "Accepted POST /snapshot/arc payloads (ring-rebalance plan shipments).", s.arcPushes.Load)
		reg.CounterFunc("ljq_arc_push_entries_total", "Plan entries warmed from accepted arc pushes.", s.arcEntries.Load)
		reg.CounterFunc("ljq_arc_push_rejected_total", "Arc pushes refused (bad method, oversized or undecodable payload).", s.arcRejected.Load)
		reg.CounterFunc("ljq_arc_push_bytes_total", "Payload bytes accepted via POST /snapshot/arc.", s.arcPushBytes.Load)
		reg.GaugeFunc("ljq_inflight_requests", "HTTP requests currently inside /optimize.", func() float64 {
			return float64(s.inFlight.Load())
		})
		reg.GaugeFunc("ljq_inflight_joins", "Join-weighted limiter units currently held.", func() float64 {
			return float64(s.sem.InUse())
		})
		reg.GaugeFunc("ljq_queued_requests", "Requests queued for limiter capacity.", func() float64 {
			return float64(s.sem.Waiting())
		})
		reg.GaugeFunc("ljq_capacity_joins", "Limiter capacity in join units.", func() float64 {
			return float64(s.sem.Capacity())
		})
		// Budget units scale as t·N²·UnitScale, so exponential buckets
		// spanning a 3-relation toy query (~400 units at t=9) up to a
		// 100-relation monster (~4.5M) cover the service envelope.
		s.budgetUsedH = reg.Histogram("ljq_optimize_budget_used_units",
			"Work units consumed per optimizer run.",
			telemetry.ExpBuckets(256, 4, 10))
		cache.RegisterMetrics(reg, "ljq_plancache")
		if s.persist != nil {
			s.persist.RegisterMetrics(reg, "ljq_persist")
		}
		if s.tiers != nil {
			s.tiers.registerMetrics(reg)
		}
	}
	return s
}

// Cache exposes the plan cache (tests, expvar wiring).
func (s *Server) Cache() *plancache.Cache { return s.cache }

// SetReady flips the readiness latch. The daemon holds readiness false
// while startup recovery (journal replay) runs; /readyz answers 503
// until it is set true. Liveness (/healthz, /livez) is unaffected.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Flush writes a compacting snapshot of the cache through the
// persistence manager. No-op (nil) when persistence is off. Called by
// the daemon at drain time, after in-flight requests finish.
func (s *Server) Flush() error {
	if s.persist == nil {
		return nil
	}
	return s.persist.Flush()
}

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", s.handleOptimize)
	mux.HandleFunc("/optimize/batch", s.handleOptimizeBatch)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/snapshot/arc", s.handleSnapshotArc)
	mux.HandleFunc("/statusz", s.handleStatusz)
	// Liveness: the process is up. Kept on /healthz for compatibility
	// with pre-split deployments; /livez is the modern spelling.
	mux.HandleFunc("/healthz", s.handleLiveness)
	mux.HandleFunc("/livez", s.handleLiveness)
	// Readiness: the process should receive traffic.
	mux.HandleFunc("/readyz", s.handleReadiness)
	if s.metrics != nil {
		mux.HandleFunc("/metrics", s.handleMetrics)
	}
	return mux
}

func (s *Server) handleLiveness(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadiness answers 503 while the daemon should not receive new
// traffic: startup recovery still replaying the plan journal, or the
// limiter shed a request within ReadinessShedWindow (an overloaded
// daemon wants less traffic, not a restart — that distinction is the
// point of the liveness/readiness split).
func (s *Server) handleReadiness(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.notReady.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "recovering: journal replay in progress")
		return
	}
	if last := s.lastShedNano.Load(); last != 0 {
		//ljqlint:allow detrand -- readiness wall-clock window, outside any seeded trajectory
		since := time.Duration(time.Now().UnixNano() - last)
		if since < s.cfg.ReadinessShedWindow {
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.ReadinessShedWindow-since))
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "shedding: limiter at capacity")
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the registry in Prometheus text exposition
// format. Only routed when Config.Metrics is set.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Write errors mean the scraper went away mid-response.
	_ = s.metrics.WritePrometheus(w)
}

// OptimizeResponse is the JSON body of a successful POST /optimize.
type OptimizeResponse struct {
	// Fingerprint is the canonical query fingerprint (hex): the cache
	// identity of the query shape.
	Fingerprint string `json:"fingerprint"`
	// CacheHit reports the plan came straight from the cache.
	CacheHit bool `json:"cacheHit"`
	// Coalesced reports the request shared another request's in-flight
	// optimization (singleflight).
	Coalesced bool `json:"coalesced"`
	// Degraded / DegradeReason / BudgetUsed carry the anytime contract
	// of the run that produced the plan.
	Degraded      bool   `json:"degraded"`
	DegradeReason string `json:"degradeReason,omitempty"`
	BudgetUsed    int64  `json:"budgetUsed"`
	// TotalCost and Order describe the plan in the requester's own
	// relation numbering; Names maps Order through the requester's
	// relation names.
	TotalCost float64  `json:"totalCost"`
	Order     []int    `json:"order"`
	Names     []string `json:"names"`
	// Tier is the planning tier that produced the plan: 1 = greedy fast
	// path (awaiting background upgrade), 2 = full anytime search. Also
	// exposed as the X-Plan-Tier response header.
	Tier int `json:"tier"`
	// Explain is the human-readable plan rendering.
	Explain string `json:"explain"`
}

// StatusResponse is the JSON body of GET /statusz.
type StatusResponse struct {
	UptimeSeconds    float64         `json:"uptimeSeconds"`
	Ready            bool            `json:"ready"`
	InFlightRequests int64           `json:"inFlightRequests"`
	InFlightJoins    int64           `json:"inFlightJoins"`
	QueuedRequests   int             `json:"queuedRequests"`
	CapacityJoins    int64           `json:"capacityJoins"`
	Optimizations    uint64          `json:"optimizations"`
	Shed             uint64          `json:"shed"`
	Cache            plancache.Stats `json:"cache"`
	// Tiers reports the tiered-planning state: cache tier composition
	// and the background-upgrade pipeline. Enabled is false (and the
	// pipeline counters zero) when the daemon runs untiered; the entry
	// counts are still filled so operators see composition after a
	// warm start from a tiered peer.
	Tiers TierStatus `json:"tiers"`
	// Persist carries the durability layer's recovery and journal
	// counters; omitted when the daemon runs without -cache-dir.
	Persist *persist.ManagerStats `json:"persist,omitempty"`
}

// TierStatus is the /statusz view of tiered planning.
type TierStatus struct {
	Enabled bool `json:"enabled"`
	// Tier1Entries / Tier2Entries is the cache's tier composition:
	// greedy plans awaiting upgrade vs full-search plans.
	Tier1Entries int `json:"tier1Entries"`
	Tier2Entries int `json:"tier2Entries"`
	// PendingUpgrades counts upgrades scheduled but not yet finished —
	// the operator-visible upgrade backlog.
	PendingUpgrades   int    `json:"pendingUpgrades"`
	Tier1Served       uint64 `json:"tier1Served"`
	Escalations       uint64 `json:"escalations"`
	UpgradesStarted   uint64 `json:"upgradesStarted"`
	UpgradesCompleted uint64 `json:"upgradesCompleted"`
	UpgradesFailed    uint64 `json:"upgradesFailed"`
	UpgradesDropped   uint64 `json:"upgradesDropped"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	st := StatusResponse{
		//ljqlint:allow detrand -- serving-layer uptime reporting, outside any seeded trajectory
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Ready:            !s.notReady.Load(),
		InFlightRequests: s.inFlight.Load(),
		InFlightJoins:    s.sem.InUse(),
		QueuedRequests:   s.sem.Waiting(),
		CapacityJoins:    s.sem.Capacity(),
		Optimizations:    s.optimizes.Load(),
		Shed:             s.shed.Load(),
		Cache:            s.cache.Stats(),
	}
	st.Tiers.Tier1Entries, st.Tiers.Tier2Entries = s.cache.TierCounts()
	if s.tiers != nil {
		s.tiers.fillStatus(&st.Tiers)
	}
	if s.persist != nil {
		ps := s.persist.Stats()
		st.Persist = &ps
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed; POST a query body", http.StatusMethodNotAllowed)
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	q, err := decodeQuery(r, s.cfg.MaxBodyBytes)
	if err != nil {
		if errors.Is(err, catalog.ErrTooLarge) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	resp, err := s.OptimizeQuery(r.Context(), q)
	if err != nil {
		status, msg, retryAfter := s.optimizeFailure(err)
		if retryAfter > 0 {
			w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
		}
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("X-Plan-Tier", planTierHeader(resp.Tier))
	// Response codec is negotiated independently of the request codec:
	// Accept picks binary, everything else stays JSON. Errors above are
	// always plain text regardless — a client that cannot read them has
	// bigger problems than framing.
	if strings.Contains(r.Header.Get("Accept"), wireSubtype) {
		writeWire(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// wireSubtype is the distinctive part of wire.ContentType that request
// and Accept headers are matched on (tolerating parameters like
// ";v=1" or lists).
const wireSubtype = "x-ljq-wire"

// planTierHeader / tierExplainLine render tier provenance as constant
// strings: the cache-hit path stays allocation-flat.
//
//ljqlint:hotpath
func planTierHeader(tier int) string {
	if tier == int(plancache.TierGreedy) {
		return "1"
	}
	return "2"
}

//ljqlint:hotpath
func tierExplainLine(tier int) string {
	if tier == int(plancache.TierGreedy) {
		return "  tier 1 (greedy fast path)\n"
	}
	return "  tier 2 (full anytime search)\n"
}

// errNoPlan guards the (unreachable under the anytime contract)
// nil-entry result of a compute; kept distinct so it maps to a 500
// rather than masquerading as capacity pressure.
var errNoPlan = errors.New("serve: no plan produced")

// OptimizeQuery is the in-process optimization path: fingerprint the
// query, consult the cache (coalescing concurrent duplicates), run the
// optimizer on a miss, and translate the canonical plan back into the
// requester's relation numbering. It is shared by POST /optimize, the
// batch endpoint, and the cluster router's local-compute rung — the
// last rung of the degradation ladder calls this directly instead of
// looping an HTTP request back to itself.
//
// Errors: errShed when the limiter's queue deadline passed,
// ctx.Err() when the caller's deadline did; map them with
// optimizeFailure for HTTP responses.
func (s *Server) OptimizeQuery(ctx context.Context, q *catalog.Query) (*OptimizeResponse, error) {
	// Canonical (not CanonicalQuery) keeps the hit path lean: the
	// canonical *relabeling* — a full clone plus renumbering — is only
	// needed to feed the optimizer, so computeEntry builds it inside the
	// miss closure. A cache hit pays for fingerprinting alone.
	fp, order := fingerprint.Canonical(q)
	entry, hit, shared, err := s.computeEntry(ctx, fp, q, order)
	if err != nil {
		return nil, err
	}
	return buildResponse(q, order, fp, entry, hit, shared), nil
}

// computeEntry resolves a canonical fingerprint to a plan entry —
// cache hit, coalesced wait, or fresh optimizer run — under the
// service's request deadline. q stays in the requester's coordinates;
// the canonical relabeling is built lazily on the miss path only.
func (s *Server) computeEntry(ctx context.Context, fp fingerprint.Fingerprint, q *catalog.Query, order []catalog.RelID) (entry *plancache.Entry, hit, shared bool, err error) {
	weight := int64(len(q.Relations) - 1)
	if weight < 1 {
		weight = 1
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	entry, hit, shared, err = s.cache.GetOrCompute(ctx, fp, func(ctx context.Context) (*plancache.Entry, error) {
		cq := fingerprint.Relabel(q, order)
		if s.tiers != nil {
			return s.tiers.compute(ctx, fp, cq, weight)
		}
		return s.optimize(ctx, fp, cq, weight)
	})
	if err != nil {
		return nil, false, false, err
	}
	if entry == nil || entry.Plan == nil {
		return nil, false, false, errNoPlan
	}
	return entry, hit, shared, nil
}

// buildResponse translates a cached plan (canonical coordinates) into
// the requester's own relation numbering and wraps it in the response
// envelope. Two differently-labeled queries of the same shape share a
// fingerprint and an entry but get different orders and names — the
// translation must use each requester's own canonical order.
func buildResponse(q *catalog.Query, order []catalog.RelID, fp fingerprint.Fingerprint, entry *plancache.Entry, hit, shared bool) *OptimizeResponse {
	pl := translatePlan(entry.Plan, order)
	tier := int(plancache.TierRank(entry.Tier))
	resp := &OptimizeResponse{
		Fingerprint:   fp.String(),
		CacheHit:      hit,
		Coalesced:     shared,
		Degraded:      pl.Degraded,
		DegradeReason: pl.DegradeReason,
		BudgetUsed:    entry.BudgetUsed,
		TotalCost:     pl.TotalCost,
		Tier:          tier,
		Explain:       pl.Explain(q) + tierExplainLine(tier),
	}
	for _, rel := range pl.Order() {
		resp.Order = append(resp.Order, int(rel))
		resp.Names = append(resp.Names, q.RelationName(rel))
	}
	return resp
}

// ResponseFromEntry builds the response envelope for a cached entry in
// the requester's own relation numbering, marked as a cache hit. It is
// the exported sibling of the internal hit path, for callers that
// resolve entries outside OptimizeQuery — the cluster router's
// read-repair serves a better local entry over a routed response with
// it. order must be q's canonical order (fingerprint.Canonical).
func ResponseFromEntry(q *catalog.Query, order []catalog.RelID, fp fingerprint.Fingerprint, entry *plancache.Entry) *OptimizeResponse {
	return buildResponse(q, order, fp, entry, true, false)
}

// optimizeFailure maps an OptimizeQuery error onto an HTTP status,
// message and Retry-After suggestion (0 = none), recording the shed
// bookkeeping that drives the /readyz back-pressure window.
func (s *Server) optimizeFailure(err error) (status int, msg string, retryAfter time.Duration) {
	switch {
	case errors.Is(err, errShed):
		s.shed.Add(1)
		//ljqlint:allow detrand -- readiness shed-window bookkeeping, outside any seeded trajectory
		s.lastShedNano.Store(time.Now().UnixNano())
		return http.StatusServiceUnavailable, "optimizer at capacity; retry later", s.cfg.QueueTimeout
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// The *waiter's* deadline passed while another request's
		// optimization was still running (or the client went away).
		return http.StatusServiceUnavailable, "request deadline passed before a plan was available", s.cfg.QueueTimeout
	default:
		return http.StatusInternalServerError, err.Error(), 0
	}
}

// handleSnapshot is the warm-start donor side: GET /snapshot ships the
// whole plan cache as the schema-versioned, CRC-framed snapshot
// container (the same bytes internal/persist writes to disk). Dump is
// fingerprint-sorted, so two donors with identical cache contents ship
// identical bytes. Served regardless of readiness — a draining or
// just-recovered peer is still a legitimate donor.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	data := persist.EncodeSnapshot(s.cache.Dump())
	s.snapships.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	// A short write means the joiner went away mid-transfer; its strict
	// decoder will refuse the torn payload and try the next donor.
	_, _ = w.Write(data)
}

// ArcPushResponse is the JSON body of a successful POST /snapshot/arc.
type ArcPushResponse struct {
	// Received is how many entries the payload carried.
	Received int `json:"received"`
	// Warmed is how many of them the cache accepted (the rest lost to
	// admission policy or upgrade-only replacement — both fine: the
	// pusher's job was delivery, not insistence).
	Warmed int `json:"warmed"`
}

// handleSnapshotArc is the proactive-rebalance receiver: when a ring
// epoch change makes this peer the owner of arcs another peer had
// cached, that peer POSTs the affected entries here as the same
// schema-versioned, CRC-framed snapshot container GET /snapshot ships
// — so a joining peer is warmed by its neighbors the moment it
// appears, instead of depending on its one startup pull. Entries warm
// through the recovery path (no admission hooks fire, so pushed plans
// are not re-journaled as fresh admissions) under the normal admission
// policy: upgrade-only tier replacement means a push can never
// downgrade what this peer already knows. A defective payload is the
// pusher's bug, answered 400 (no retry will fix it); an oversized one
// is answered 413.
func (s *Server) handleSnapshotArc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.arcRejected.Add(1)
		http.Error(w, "method not allowed; POST a snapshot container", http.StatusMethodNotAllowed)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.ArcPushMaxBytes+1))
	if err != nil {
		s.arcRejected.Add(1)
		http.Error(w, fmt.Sprintf("read payload: %v", err), http.StatusBadRequest)
		return
	}
	if int64(len(data)) > s.cfg.ArcPushMaxBytes {
		s.arcRejected.Add(1)
		http.Error(w, fmt.Sprintf("payload exceeds %d bytes", s.cfg.ArcPushMaxBytes), http.StatusRequestEntityTooLarge)
		return
	}
	entries, err := persist.DecodeSnapshotStrict(data)
	if err != nil {
		s.arcRejected.Add(1)
		http.Error(w, fmt.Sprintf("decode payload: %v", err), http.StatusBadRequest)
		return
	}
	resp := ArcPushResponse{Received: len(entries)}
	for _, e := range entries {
		if s.cache.Warm(e) {
			resp.Warmed++
		}
	}
	s.arcPushes.Add(1)
	s.arcEntries.Add(uint64(resp.Warmed))
	s.arcPushBytes.Add(uint64(len(data)))
	writeJSON(w, http.StatusOK, resp)
}

// optimize is the cache-miss path: acquire join-weighted capacity
// (shedding on queue deadline), then run the anytime optimizer on the
// canonical query under the request context.
func (s *Server) optimize(ctx context.Context, fp fingerprint.Fingerprint, cq *catalog.Query, weight int64) (*plancache.Entry, error) {
	qctx, qcancel := context.WithTimeout(ctx, s.cfg.QueueTimeout)
	err := s.sem.Acquire(qctx, weight)
	qcancel()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err() // the request itself is dead, not just the queue
		}
		return nil, errShed
	}
	defer s.sem.Release(weight)
	s.optimizes.Add(1)

	n := len(cq.Relations) - 1
	if n < 1 {
		n = 1
	}
	budget := cost.NewBudget(cost.UnitsFor(s.cfg.TCoeff, n))
	opt, err := core.NewOptimizer(cq.Clone(), s.cfg.Model, budget, rand.New(rand.NewSource(s.cfg.Seed)), core.Options{})
	if err != nil {
		return nil, err
	}
	pl, runErr := opt.RunContext(ctx, s.cfg.Method)
	if pl == nil {
		// RunContext's anytime contract makes this unreachable; be
		// defensive about future regressions.
		return nil, runErr
	}
	s.budgetUsedH.Observe(float64(budget.Used())) // nil-safe no-op when metrics are off
	// A recovered strategy panic still yields a valid (degraded) plan;
	// serve it — the plancache's admission policy keeps degraded plans
	// out of the cache.
	return &plancache.Entry{Fingerprint: fp, Plan: pl, BudgetUsed: budget.Used(), Tier: plancache.TierFull}, nil
}

// translatePlan maps a plan expressed in canonical relation positions
// into the requester's RelIDs via the canonical order (order[i] = the
// requester's relation at canonical position i).
func translatePlan(pl *plan.Plan, order []catalog.RelID) *plan.Plan {
	out := &plan.Plan{
		CrossCost:     pl.CrossCost,
		TotalCost:     pl.TotalCost,
		Degraded:      pl.Degraded,
		DegradeReason: pl.DegradeReason,
	}
	for _, c := range pl.Components {
		perm := make(plan.Perm, len(c.Perm))
		for i, p := range c.Perm {
			perm[i] = order[p]
		}
		out.Components = append(out.Components, plan.Result{Perm: perm, Cost: c.Cost})
	}
	return out
}

// decodeQuery reads a size-capped query body. The format is the JSON
// interchange format by default; `?format=dsl` or a Content-Type
// containing "x-qdsl" selects the textual DSL, and `?format=wire` or a
// Content-Type containing "x-ljq-wire" selects the binary wire codec.
// All paths go through the hardened limit readers, so an oversized body
// surfaces as catalog.ErrTooLarge (→ 413), never as a silently
// truncated parse.
func decodeQuery(r *http.Request, maxBytes int64) (*catalog.Query, error) {
	format := r.URL.Query().Get("format")
	ct := r.Header.Get("Content-Type")
	isDSL := format == "dsl" || strings.Contains(ct, "x-qdsl")
	isWire := format == "wire" || strings.Contains(ct, wireSubtype)
	switch format {
	case "", "dsl", "json", "wire":
	default:
		return nil, fmt.Errorf("serve: unknown format %q (want dsl, json or wire)", format)
	}
	if isWire {
		data, err := io.ReadAll(catalog.CapReader(r.Body, maxBytes))
		if err != nil {
			return nil, err
		}
		return wire.DecodeQuery(data)
	}
	br := bufio.NewReader(r.Body)
	if isDSL {
		return qdsl.ParseLimit(br, maxBytes)
	}
	return qfile.ReadLimit(br, maxBytes)
}

// jsonEncBuf is one pooled encode unit: the buffer and an encoder
// permanently aimed at it (json.Encoder has no Reset, so reusing it
// means pooling them together). Once warm, a response costs zero
// encoder/buffer allocations, and the handler hands net/http a single
// sized Write (Content-Length instead of chunked framing).
type jsonEncBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{
	New: func() any {
		e := &jsonEncBuf{}
		e.enc = json.NewEncoder(&e.buf)
		e.enc.SetIndent("", "  ")
		return e
	},
}

// jsonBufPoolCap bounds what returns to the pool: a rare huge Explain
// response must not pin its capacity forever.
const jsonBufPoolCap = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	e := jsonBufPool.Get().(*jsonEncBuf)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// Nothing reached the wire yet, so the failure can surface as
		// a real 500 (the streaming encoder could only tear the
		// connection mid-body).
		jsonBufPool.Put(e)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(e.buf.Len()))
	w.WriteHeader(status)
	// Write errors mean the client went away; nothing useful remains
	// to be done with the connection.
	_, _ = w.Write(e.buf.Bytes())
	if e.buf.Cap() <= jsonBufPoolCap {
		jsonBufPool.Put(e)
	}
}

// wireBufPool holds the binary response path's encode buffers; like
// the JSON pool, a warm buffer makes a cache-hit response cost zero
// encoder allocations and one sized Write.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func writeWire(w http.ResponseWriter, status int, resp *OptimizeResponse) {
	bp := wireBufPool.Get().(*[]byte)
	wr := wire.Response{
		Fingerprint:   resp.Fingerprint,
		CacheHit:      resp.CacheHit,
		Coalesced:     resp.Coalesced,
		Degraded:      resp.Degraded,
		DegradeReason: resp.DegradeReason,
		BudgetUsed:    resp.BudgetUsed,
		TotalCost:     resp.TotalCost,
		Order:         resp.Order,
		Names:         resp.Names,
		Tier:          resp.Tier,
		Explain:       resp.Explain,
	}
	buf := wire.AppendResponse((*bp)[:0], &wr)
	w.Header().Set("Content-Type", wire.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(status)
	// Write errors mean the client went away; nothing useful remains.
	_, _ = w.Write(buf)
	if cap(buf) <= jsonBufPoolCap {
		*bp = buf
		wireBufPool.Put(bp)
	}
}

// retryAfterSeconds serializes a suggested wait as a Retry-After
// header value, rounding UP to whole seconds: a 400ms suggestion must
// become "1", not a truncated "0" (which clients read as "retry
// immediately" — the opposite of shedding), and a 1.4s suggestion must
// not lose its fractional 400ms either.
//
//ljqlint:hotpath
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
