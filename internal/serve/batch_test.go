package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"joinopt/internal/persist"
	"joinopt/internal/plancache"
	"joinopt/internal/workload"
)

func postBatch(t *testing.T, url string, body []byte) (*http.Response, BatchResponse) {
	t.Helper()
	resp, err := http.Post(url+"/optimize/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func batchBody(t *testing.T, items ...[]byte) []byte {
	t.Helper()
	raw := make([]json.RawMessage, len(items))
	for i, b := range items {
		raw[i] = json.RawMessage(b)
	}
	body, err := json.Marshal(BatchRequest{Queries: raw})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestBatchOrderAndCoalescing is the batch contract: results in input
// order, intra-batch duplicates of one canonical shape coalesce onto a
// single optimizer run, and each slot is translated into its own
// requester coordinates.
func TestBatchOrderAndCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(7))
	q0 := workload.Default().Generate(5, rng)
	q1 := workload.Default().Generate(6, rng)
	q2 := workload.Default().Generate(7, rng)

	// q0 appears three times, q1 twice: 6 items, 3 unique shapes.
	body := batchBody(t,
		queryBody(t, q0), queryBody(t, q1), queryBody(t, q0),
		queryBody(t, q2), queryBody(t, q1), queryBody(t, q0))
	resp, out := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(out.Results))
	}
	for i, item := range out.Results {
		if item.Error != "" || item.Plan == nil {
			t.Fatalf("item %d failed: %+v", i, item)
		}
	}
	// Input order: slots 0, 2 and 5 are q0; 1 and 4 are q1; 3 is q2.
	fp := func(i int) string { return out.Results[i].Plan.Fingerprint }
	if fp(0) != fp(2) || fp(0) != fp(5) || fp(1) != fp(4) {
		t.Fatal("duplicate slots returned different fingerprints")
	}
	if fp(0) == fp(1) || fp(1) == fp(3) || fp(0) == fp(3) {
		t.Fatal("distinct shapes share a fingerprint")
	}
	for i, want := range []int{6, 7, 6, 8, 7, 6} {
		if got := len(out.Results[i].Plan.Order); got != want {
			t.Fatalf("item %d order has %d relations, want %d", i, got, want)
		}
	}
	// One optimizer run per unique shape — the coalescing assertion.
	st := s.Cache().Stats()
	if st.Misses != 3 {
		t.Fatalf("cache misses = %d, want 3 (one per unique shape)", st.Misses)
	}
	// Duplicate slots that rode a batchmate's run say so.
	if !out.Results[2].Plan.Coalesced || !out.Results[5].Plan.Coalesced || !out.Results[4].Plan.Coalesced {
		t.Fatalf("duplicate slots not flagged coalesced: %+v %+v %+v",
			out.Results[2].Plan, out.Results[4].Plan, out.Results[5].Plan)
	}
	// Identical plans for identical shapes, byte for byte.
	if out.Results[0].Plan.Explain != out.Results[2].Plan.Explain {
		t.Fatal("duplicate slots produced different plans")
	}

	// A rerun of the whole batch is all cache hits, no new misses.
	_, out2 := postBatch(t, ts.URL, body)
	for i, item := range out2.Results {
		if item.Plan == nil || !item.Plan.CacheHit {
			t.Fatalf("rerun item %d not a cache hit", i)
		}
	}
	if got := s.Cache().Stats().Misses; got != 3 {
		t.Fatalf("rerun added misses: %d", got)
	}
}

// TestBatchPerItemErrors: a malformed item claims its own slot without
// poisoning its batchmates, and slots carry standalone HTTP statuses.
func TestBatchPerItemErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(3))
	good := queryBody(t, workload.Default().Generate(5, rng))

	body := batchBody(t, good, []byte(`{"relations": "not a list"}`), good)
	resp, out := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with per-item slots", resp.StatusCode)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Plan == nil || out.Results[2].Plan == nil {
		t.Fatal("valid batchmates were poisoned by the bad item")
	}
	bad := out.Results[1]
	if bad.Plan != nil || bad.Error == "" || bad.Status != http.StatusBadRequest {
		t.Fatalf("bad item slot = %+v, want 400 error", bad)
	}
}

func TestBatchEnvelopeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 2, MaxBodyBytes: 4096})
	rng := rand.New(rand.NewSource(4))
	good := queryBody(t, workload.Default().Generate(4, rng))

	get, err := http.Get(ts.URL + "/optimize/batch")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", get.StatusCode)
	}

	cases := []struct {
		name   string
		body   []byte
		status int
	}{
		{"malformed", []byte(`{"queries": 7}`), http.StatusBadRequest},
		{"empty", batchBody(t), http.StatusBadRequest},
		{"too-many-items", batchBody(t, good, good, good), http.StatusBadRequest},
		{"oversized", []byte(`{"queries": [` + strings.Repeat(" ", 5000) + `]}`), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, _ := postBatch(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestSnapshotEndpoint: GET /snapshot ships the cache as a strict-
// decodable snapshot a fresh cache can warm from — the donor half of
// the cluster warm-start protocol.
func TestSnapshotEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{5, 8} {
		resp, _ := postOptimize(t, ts.URL, queryBody(t, workload.Default().Generate(n, rng)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed optimize: status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /snapshot: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if got := resp.ContentLength; got != int64(buf.Len()) {
		t.Fatalf("Content-Length %d, body %d bytes", got, buf.Len())
	}

	entries, err := persist.DecodeSnapshotStrict(buf.Bytes())
	if err != nil {
		t.Fatalf("strict decode of shipped snapshot: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("shipped %d entries, want 2", len(entries))
	}
	fresh := plancache.New(plancache.Config{Capacity: 64})
	for _, e := range entries {
		if !fresh.Warm(e) {
			t.Fatalf("fresh cache refused shipped entry %s", e.Fingerprint)
		}
	}
	for _, e := range s.Cache().Dump() {
		if _, ok := fresh.Get(e.Fingerprint); !ok {
			t.Fatalf("warmed cache missing %s", e.Fingerprint)
		}
	}

	// POST is not a snapshot verb.
	post, err := http.Post(ts.URL+"/snapshot", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /snapshot: status %d, want 405", post.StatusCode)
	}
}
