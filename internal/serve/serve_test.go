package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/plancache"
	"joinopt/internal/qfile"
	"joinopt/internal/telemetry"
	"joinopt/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.TCoeff == 0 {
		cfg.TCoeff = 1 // keep tests fast
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func queryBody(t *testing.T, q *catalog.Query) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := qfile.Write(&buf, q); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postOptimize(t *testing.T, url string, body []byte) (*http.Response, OptimizeResponse) {
	t.Helper()
	resp, err := http.Post(url+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out OptimizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestSmokeEndToEnd is the CI smoke contract: POST a 20-join query
// twice; the second response is a cache hit with byte-identical plan
// Explain output.
func TestSmokeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := workload.Default().Generate(20, rand.New(rand.NewSource(42)))
	body := queryBody(t, q)

	resp1, out1 := postOptimize(t, ts.URL, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: status %d", resp1.StatusCode)
	}
	if out1.CacheHit {
		t.Fatal("first POST must be a miss")
	}
	if out1.Fingerprint == "" || out1.Explain == "" || len(out1.Order) != 21 {
		t.Fatalf("first response incomplete: %+v", out1)
	}
	if out1.BudgetUsed <= 0 {
		t.Fatalf("budgetUsed = %d, want > 0", out1.BudgetUsed)
	}

	resp2, out2 := postOptimize(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: status %d", resp2.StatusCode)
	}
	if !out2.CacheHit {
		t.Fatal("second POST must be a cache hit")
	}
	if out2.Fingerprint != out1.Fingerprint {
		t.Fatalf("fingerprint drifted: %s != %s", out2.Fingerprint, out1.Fingerprint)
	}
	if out2.Explain != out1.Explain {
		t.Fatalf("explain not byte-identical:\n--- first\n%s\n--- second\n%s", out1.Explain, out2.Explain)
	}
	if out2.TotalCost != out1.TotalCost {
		//ljqlint:allow floatsafe -- test file (out of lint scope anyway): cached plans must reproduce bit-identical costs
		t.Fatalf("total cost drifted: %g != %g", out2.TotalCost, out1.TotalCost)
	}
}

// TestRelabeledQueryHits: a query isomorphic up to RelID permutation
// (names moving with their relations) fingerprints identically, hits
// the cache, and yields identical Explain output — one optimizer run
// serves both labelings.
func TestRelabeledQueryHits(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(9))
	q := workload.Default().Generate(15, rng)

	perm := rng.Perm(len(q.Relations))
	qp := &catalog.Query{
		Relations:  make([]catalog.Relation, len(q.Relations)),
		Predicates: make([]catalog.Predicate, len(q.Predicates)),
	}
	for old, rel := range q.Relations {
		r := rel
		r.Selections = append([]catalog.Selection(nil), rel.Selections...)
		qp.Relations[perm[old]] = r
	}
	for i, p := range q.Predicates {
		np := p
		np.Left = catalog.RelID(perm[p.Left])
		np.Right = catalog.RelID(perm[p.Right])
		np.Normalize()
		qp.Predicates[i] = np
	}
	rng.Shuffle(len(qp.Predicates), func(a, b int) {
		qp.Predicates[a], qp.Predicates[b] = qp.Predicates[b], qp.Predicates[a]
	})

	resp1, out1 := postOptimize(t, ts.URL, queryBody(t, q))
	resp2, out2 := postOptimize(t, ts.URL, queryBody(t, qp))
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	if out1.Fingerprint != out2.Fingerprint {
		t.Fatalf("isomorphic queries fingerprinted differently:\n%s\n%s", out1.Fingerprint, out2.Fingerprint)
	}
	if out1.CacheHit || !out2.CacheHit {
		t.Fatalf("want miss-then-hit, got %v then %v", out1.CacheHit, out2.CacheHit)
	}
	if out1.Explain != out2.Explain {
		t.Fatalf("explain differs across relabeling:\n--- A\n%s\n--- B\n%s", out1.Explain, out2.Explain)
	}
	st := s.Cache().Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 miss and 1 hit", st)
	}
}

// TestOversizedBody413: the serve boundary's size cap answers
// oversized bodies with 413, for both input formats.
func TestOversizedBody413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 200})
	q := workload.Default().Generate(20, rand.New(rand.NewSource(1)))
	body := queryBody(t, q) // far larger than 200 bytes
	resp, _ := postOptimize(t, ts.URL, body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("JSON: status %d, want 413", resp.StatusCode)
	}

	var dsl strings.Builder
	dsl.WriteString("relation a 100\nrelation b 100\njoin a b selectivity 0.1\n")
	for dsl.Len() <= 200 {
		dsl.WriteString("# padding comment to push the body over the cap\n")
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize?format=dsl",
		strings.NewReader(dsl.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("DSL: status %d, want 413", resp2.StatusCode)
	}
}

// TestDSLBody: the textual DSL is accepted via ?format=dsl.
func TestDSLBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dsl := "relation orders 10000\nrelation customers 500\nrelation nation 25\n" +
		"join orders customers distinct 500 500\njoin customers nation selectivity 0.04\n"
	resp, err := http.Post(ts.URL+"/optimize?format=dsl", "text/x-qdsl", strings.NewReader(dsl))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var out OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Names) != 3 {
		t.Fatalf("names = %v, want 3 relations", out.Names)
	}
}

// TestMalformedBody400: garbage is a client error, not a crash.
func TestMalformedBody400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postOptimize(t, ts.URL, []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	respGet, err := http.Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	respGet.Body.Close()
	if respGet.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", respGet.StatusCode)
	}
}

// TestLoadShedding503: with the limiter saturated, requests are shed
// after the queue deadline with 503 + Retry-After, and served again
// once capacity frees up.
func TestLoadShedding503(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInFlightJoins: 1,
		QueueTimeout:     30 * time.Millisecond,
	})
	// Saturate the limiter directly (the handler path would race the
	// test's timing).
	if err := s.sem.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	q := workload.Default().Generate(8, rand.New(rand.NewSource(2)))
	resp, _ := postOptimize(t, ts.URL, queryBody(t, q))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}
	s.sem.Release(1)
	resp2, out := postOptimize(t, ts.URL, queryBody(t, q))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status %d, want 200", resp2.StatusCode)
	}
	if out.Explain == "" {
		t.Fatal("empty plan after release")
	}
}

// TestConcurrentDuplicatesCoalesce: N concurrent requests for the same
// shape trigger exactly one optimizer run.
func TestConcurrentDuplicatesCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{TCoeff: 3})
	q := workload.Default().Generate(25, rand.New(rand.NewSource(5)))
	body := queryBody(t, q)

	const clients = 16
	var wg sync.WaitGroup
	results := make([]OptimizeResponse, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("client %d panicked: %v", i, r)
				}
				wg.Done()
			}()
			resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				if err := json.NewDecoder(resp.Body).Decode(&results[i]); err != nil {
					t.Errorf("client %d: %v", i, err)
				}
			}
		}(i)
	}
	wg.Wait()

	explains := map[string]int{}
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		explains[results[i].Explain]++
	}
	if len(explains) != 1 {
		t.Fatalf("clients saw %d distinct plans, want 1", len(explains))
	}
	st := s.Cache().Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (singleflight)", st.Misses)
	}
	if st.Hits+st.Coalesced != clients-1 {
		t.Fatalf("hits(%d)+coalesced(%d) = %d, want %d",
			st.Hits, st.Coalesced, st.Hits+st.Coalesced, clients-1)
	}
}

// TestStatusz: the status endpoint reports sane JSON.
func TestStatusz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := workload.Default().Generate(6, rand.New(rand.NewSource(3)))
	postOptimize(t, ts.URL, queryBody(t, q))
	postOptimize(t, ts.URL, queryBody(t, q))

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses != 1 || st.Cache.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss / 1 hit", st.Cache)
	}
	if st.Optimizations != 1 {
		t.Fatalf("optimizations = %d, want 1", st.Optimizations)
	}
	if st.CapacityJoins <= 0 || st.UptimeSeconds < 0 {
		t.Fatalf("implausible status: %+v", st)
	}

	respHealth, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	respHealth.Body.Close()
	if respHealth.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", respHealth.StatusCode)
	}
}

// TestDegradedNotCached: a request whose deadline truncates the run
// gets a degraded plan, and that plan is not admitted to the cache.
func TestDegradedNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{
		TCoeff:         1e9, // effectively unbounded unit budget...
		RequestTimeout: 30 * time.Millisecond,
	})
	q := workload.Default().Generate(40, rand.New(rand.NewSource(8)))
	resp, out := postOptimize(t, ts.URL, queryBody(t, q))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (anytime contract)", resp.StatusCode)
	}
	if !out.Degraded {
		t.Skip("optimizer finished under 30ms; cannot exercise degradation here")
	}
	if s.Cache().Len() != 0 {
		t.Fatal("degraded plan was cached")
	}
}

// TestSemaphore covers the limiter directly: FIFO grants, ctx-aware
// waits, clamping.
func TestSemaphore(t *testing.T) {
	sem := newSemaphore(4)
	ctx := context.Background()
	if err := sem.Acquire(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if sem.InUse() != 3 {
		t.Fatalf("in use = %d", sem.InUse())
	}
	// Oversized request clamps to capacity rather than deadlocking.
	done := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		done <- sem.Acquire(ctx, 99)
	}()
	select {
	case err := <-done:
		t.Fatalf("clamped acquire should wait for release, got %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	sem.Release(3)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sem.InUse() != 4 {
		t.Fatalf("in use = %d, want clamped 4", sem.InUse())
	}
	// A waiter with an expired context returns promptly.
	expired, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if err := sem.Acquire(expired, 1); err == nil {
		t.Fatal("acquire should fail under an expired context")
	}
	sem.Release(4)
	if sem.InUse() != 0 || sem.Waiting() != 0 {
		t.Fatalf("leaked capacity: inUse=%d waiting=%d", sem.InUse(), sem.Waiting())
	}
}

// BenchmarkOptimizeCacheHit measures the full handler path on the hot
// (cached) path: decode → fingerprint → cache hit → translate → encode.
func BenchmarkOptimizeCacheHit(b *testing.B) {
	s := New(Config{TCoeff: 1})
	q := workload.Default().Generate(20, rand.New(rand.NewSource(4)))
	var buf bytes.Buffer
	if err := qfile.Write(&buf, q); err != nil {
		b.Fatal(err)
	}
	body := buf.Bytes()
	h := s.Handler()
	warm := httptest.NewRequest(http.MethodPost, "/optimize", bytes.NewReader(body))
	h.ServeHTTP(httptest.NewRecorder(), warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/optimize", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkOptimizeMiss prices the cold path end to end (small query,
// small budget) for comparison with the hit path.
func BenchmarkOptimizeMiss(b *testing.B) {
	q := workload.Default().Generate(10, rand.New(rand.NewSource(6)))
	var buf bytes.Buffer
	if err := qfile.Write(&buf, q); err != nil {
		b.Fatal(err)
	}
	body := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Config{TCoeff: 1, CacheHandle: plancache.New(plancache.Config{Capacity: 8})})
		h := s.Handler()
		b.StartTimer()
		req := httptest.NewRequest(http.MethodPost, "/optimize", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// TestMetricsEndpoint is the observability smoke contract (CI's
// ljqd-smoke job scrapes the live daemon the same way): with
// Config.Metrics set, GET /metrics serves Prometheus text exposition
// containing the core server and cache series, and the counters move
// with traffic.
func TestMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts := newTestServer(t, Config{Metrics: reg})

	// Without traffic the gauges exist but counters are zero.
	q := workload.Default().Generate(12, rand.New(rand.NewSource(7)))
	body := queryBody(t, q)
	if resp, _ := postOptimize(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: status %d", resp.StatusCode)
	}
	if resp, _ := postOptimize(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize (hit): status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, series := range []string{
		"ljq_optimizations_total 1",
		"ljq_plancache_hits_total 1",
		"ljq_plancache_misses_total 1",
		"ljq_plancache_entries 1",
		"ljq_shed_total 0",
		"ljq_optimize_budget_used_units_count 1",
		"ljq_inflight_requests 0",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %q\n----\n%s", series, text)
		}
	}
	if !strings.Contains(text, "# TYPE ljq_optimize_budget_used_units histogram") {
		t.Errorf("/metrics missing histogram TYPE line\n----\n%s", text)
	}
}

// TestMetricsDisabled: without Config.Metrics the endpoint is not
// routed at all.
func TestMetricsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics without registry: status %d, want 404", resp.StatusCode)
	}
}
