package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// DaemonConfig configures RunDaemon, the daemon run loop shared by
// cmd/ljqd and the drain-ordering tests.
type DaemonConfig struct {
	// Server is the optimizer service (required).
	Server *Server
	// Addr is the listen address (":8080"; ":0" picks a free port).
	Addr string
	// Handler overrides Server.Handler() (pprof wrapping, test
	// middleware). Optional.
	Handler http.Handler
	// Grace bounds the shutdown drain (default 15s).
	Grace time.Duration
	// OnListen, if set, receives the bound address before serving
	// starts (tests bind ":0" and need the port; the daemon logs it).
	OnListen func(addr net.Addr)
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
}

// RunDaemon serves cfg.Server until ctx is cancelled, then shuts down
// in the order a load-balanced deployment needs:
//
//  1. stop accepting: the listener closes immediately, so new
//     connections fail over to healthy replicas (readiness has
//     usually already turned them away);
//  2. drain: in-flight requests run to completion (bounded by Grace;
//     the anytime optimizer hands expiring requests their incumbent
//     plans, flagged degraded);
//  3. flush: the plan cache is snapshotted through the persistence
//     manager, so the next start recovers every plan this process
//     paid for;
//  4. return nil (the daemon exits 0 on a clean drain).
//
// The flush runs after the drain on purpose: plans admitted by the
// final in-flight requests belong in the snapshot. If the drain
// overruns Grace the server is force-closed and the flush still runs —
// a partial flush failure leaves the previous snapshot plus the
// journal, which recovery handles (that matrix is what the fault
// filesystem tests pin down).
func RunDaemon(ctx context.Context, cfg DaemonConfig) error {
	if cfg.Server == nil {
		return errors.New("serve: DaemonConfig.Server required")
	}
	if cfg.Grace <= 0 {
		cfg.Grace = 15 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	handler := cfg.Handler
	if handler == nil {
		handler = cfg.Server.Handler()
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", cfg.Addr, err)
	}
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr())
	}
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		// Listener goroutine panic barrier (panicguard): a crash in
		// the HTTP stack must surface as a daemon error, not a
		// process-killing panic from a bare goroutine.
		defer func() {
			if r := recover(); r != nil {
				errc <- fmt.Errorf("serve: listener panicked: %v", r)
			}
		}()
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		// The listener died on its own; still try to preserve state.
		cfg.Server.StopUpgrades()
		if ferr := cfg.Server.Flush(); ferr != nil {
			cfg.Logf("ljqd: flush after listener failure: %v", ferr)
		}
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
	}

	cfg.Logf("ljqd: shutdown signal; draining in-flight optimizations")
	// Readiness goes false first: a load balancer probing /readyz in
	// the instant before the listener closes sees the drain coming.
	cfg.Server.SetReady(false)

	// Shutdown needs a context that survives the (already cancelled)
	// run context but still bounds the drain.
	//ljqlint:allow ctxflow -- the run ctx is already cancelled; the drain deadline must not inherit that cancellation
	shCtx, cancel := context.WithTimeout(context.Background(), cfg.Grace)
	defer cancel()
	var drainErr error
	if err := hs.Shutdown(shCtx); err != nil {
		cfg.Logf("ljqd: drain incomplete after %s: %v", cfg.Grace, err)
		_ = hs.Close()
		drainErr = fmt.Errorf("serve: drain incomplete: %w", err)
	}

	// Stop the background tier-upgrade pipeline before the flush:
	// cancelled upgrades are discarded (their degraded incumbents never
	// land), so the snapshot below is the stable final cache state.
	cfg.Server.StopUpgrades()

	// Snapshot after the drain so the final requests' plans are in it.
	if err := cfg.Server.Flush(); err != nil {
		cfg.Logf("ljqd: final snapshot failed: %v (previous snapshot + journal remain recoverable)", err)
		if drainErr == nil {
			drainErr = err
		}
	} else {
		cfg.Logf("ljqd: plan cache flushed")
	}
	return drainErr
}
