package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"joinopt/internal/catalog"
	"joinopt/internal/fingerprint"
	"joinopt/internal/plancache"
	"joinopt/internal/qfile"
)

// POST /optimize/batch: many queries in one request.
//
//	{"queries": [<interchange query>, <interchange query>, ...]}
//
// The batch path exists for cache-affinity clients (the cluster router,
// bulk plan pre-warming) that would otherwise pay one round trip per
// query. Semantics, per the batch contract:
//
//   - Every query is fingerprinted first; intra-batch duplicates of the
//     same canonical shape coalesce onto ONE optimizer run (and any
//     concurrent out-of-batch request for the shape joins the same
//     singleflight), but each item is still translated into its own
//     relation numbering — two labelings of one shape share a plan, not
//     a response.
//   - Results come back in input order, one slot per query. A slot
//     holds either the plan or that item's own error and would-be HTTP
//     status; one unparseable or shed item never poisons its batchmates
//     (no all-or-nothing 500s).
//   - Whole-request errors are reserved for the envelope itself:
//     non-POST (405), oversized body (413), malformed JSON or an empty
//     or over-long query list (400).
type BatchRequest struct {
	Queries []json.RawMessage `json:"queries"`
}

// BatchItem is one slot of a BatchResponse: exactly one of Plan or
// Error is set. Status carries the HTTP status the item would have
// received as a standalone POST /optimize (400 parse failure, 503
// shed, 500 internal), letting callers retry shed items selectively.
type BatchItem struct {
	Plan   *OptimizeResponse `json:"plan,omitempty"`
	Error  string            `json:"error,omitempty"`
	Status int               `json:"status,omitempty"`
}

// BatchResponse is the body of a POST /optimize/batch reply; Results
// is parallel to the request's Queries.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// batchShape is one parsed batch item: the requester-coordinate query
// plus its canonical identity.
type batchShape struct {
	q     *catalog.Query
	fp    fingerprint.Fingerprint
	order []catalog.RelID
}

func (s *Server) handleOptimizeBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed; POST a batch body", http.StatusMethodNotAllowed)
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
			http.StatusRequestEntityTooLarge)
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "malformed batch body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "batch carries no queries", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatchItems {
		http.Error(w, fmt.Sprintf("batch carries %d queries; limit is %d",
			len(req.Queries), s.cfg.MaxBatchItems), http.StatusBadRequest)
		return
	}
	s.batches.Add(1)

	// Parse and fingerprint every item up front; parse failures claim
	// their slot immediately and never reach the limiter.
	results := make([]BatchItem, len(req.Queries))
	shapes := make([]*batchShape, len(req.Queries))
	type computed struct {
		claimed bool // set synchronously by the launch loop below
		owner   int  // slot index that owns the compute
		entry   *plancache.Entry
		hit     bool
		shared  bool
		err     error
	}
	unique := make(map[fingerprint.Fingerprint]*computed)
	for i, raw := range req.Queries {
		q, err := qfile.Read(bytes.NewReader(raw))
		if err != nil {
			results[i] = BatchItem{Error: err.Error(), Status: http.StatusBadRequest}
			continue
		}
		sh := &batchShape{q: q}
		sh.fp, sh.order = fingerprint.Canonical(q)
		shapes[i] = sh
		if _, dup := unique[sh.fp]; !dup {
			unique[sh.fp] = &computed{}
		}
	}

	// One compute per unique shape, concurrently; intra-batch
	// duplicates and concurrent out-of-batch requests coalesce through
	// the cache's singleflight layer. Launch in slot order so the
	// claiming item is deterministic.
	var wg sync.WaitGroup
	for i, sh := range shapes {
		if sh == nil {
			continue
		}
		c := unique[sh.fp]
		if c.claimed {
			continue // an earlier slot owns this shape's compute
		}
		c.claimed = true
		c.owner = i
		wg.Add(1)
		go func(sh *batchShape, c *computed) {
			defer wg.Done()
			defer func() {
				// Panic barrier (panicguard): a compute crash becomes
				// that item's 500, not a process kill.
				if rec := recover(); rec != nil {
					c.err = fmt.Errorf("serve: batch compute panicked: %v", rec)
				}
			}()
			c.entry, c.hit, c.shared, c.err = s.computeEntry(r.Context(), sh.fp, sh.q, sh.order)
		}(sh, c)
	}
	wg.Wait()

	for i, sh := range shapes {
		if sh == nil {
			continue // parse-failure slot already written
		}
		c := unique[sh.fp]
		if c.err != nil {
			status, msg, _ := s.optimizeFailure(c.err)
			results[i] = BatchItem{Error: msg, Status: status}
			continue
		}
		// A duplicate slot rode its batchmate's compute: report it
		// coalesced unless the shape was a plain cache hit anyway.
		shared := c.shared || (i != c.owner && !c.hit)
		results[i] = BatchItem{Plan: buildResponse(sh.q, sh.order, sh.fp, c.entry, c.hit, shared)}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}
