// Package bushy extends the paper's search to the space of bushy join
// trees. The paper restricts itself to outer linear (left-deep) trees
// and flags validating that restriction as an open problem (§2); the
// dp package answers it exactly for small queries, and this package
// provides the large-N instrument: iterative improvement over bushy
// trees with the classical tree move set (swap, commutativity,
// associativity), under the same metered budget as the linear search.
//
// Trees may contain cross-product joins; they are priced honestly
// (selectivity 1) rather than filtered, so the search avoids them the
// same way a real optimizer's cost function would.
package bushy

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"joinopt/internal/analysis/invariant"
	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

// Tree is a mutable bushy join tree node. Leaves carry a relation;
// internal nodes join their two children (left = outer).
type Tree struct {
	Rel         catalog.RelID // valid for leaves
	Left, Right *Tree         // nil for leaves
}

// IsLeaf reports whether the node is a base relation.
func (t *Tree) IsLeaf() bool { return t.Left == nil }

// Clone deep-copies the tree.
func (t *Tree) Clone() *Tree {
	if t == nil {
		return nil
	}
	if t.IsLeaf() {
		return &Tree{Rel: t.Rel}
	}
	return &Tree{Left: t.Left.Clone(), Right: t.Right.Clone()}
}

// Leaves appends the tree's relations in left-to-right order.
func (t *Tree) Leaves(dst []catalog.RelID) []catalog.RelID {
	if t.IsLeaf() {
		return append(dst, t.Rel)
	}
	dst = t.Left.Leaves(dst)
	return t.Right.Leaves(dst)
}

// String renders the tree in parenthesized form.
func (t *Tree) String() string {
	var b strings.Builder
	t.format(&b)
	return b.String()
}

func (t *Tree) format(b *strings.Builder) {
	if t.IsLeaf() {
		fmt.Fprintf(b, "R%d", t.Rel)
		return
	}
	b.WriteByte('(')
	t.Left.format(b)
	b.WriteString(" ⋈ ")
	t.Right.format(b)
	b.WriteByte(')')
}

// internalNodes appends pointers to every internal node (pre-order).
func (t *Tree) internalNodes(dst []*Tree) []*Tree {
	if t.IsLeaf() {
		return dst
	}
	dst = append(dst, t)
	dst = t.Left.internalNodes(dst)
	return t.Right.internalNodes(dst)
}

// allNodes appends pointers to every node (pre-order).
func (t *Tree) allNodes(dst []*Tree) []*Tree {
	dst = append(dst, t)
	if !t.IsLeaf() {
		dst = t.Left.allNodes(dst)
		dst = t.Right.allNodes(dst)
	}
	return dst
}

// Space is the bushy search space for one component: evaluation, random
// tree generation, and the tree move set, all budget-metered.
type Space struct {
	stats  *estimate.Stats
	model  cost.Model
	budget *cost.Budget
	rels   []catalog.RelID
	rng    *rand.Rand
	// MaxProposals bounds the attempts to find a cost-improving
	// applicable move per Neighbor call.
	MaxProposals int

	maskL, maskR joingraph.Bitset
}

// NewSpace builds a bushy search space over the component rels.
func NewSpace(st *estimate.Stats, model cost.Model, budget *cost.Budget, rels []catalog.RelID, rng *rand.Rand) *Space {
	n := st.Query().NumRelations()
	return &Space{
		stats:        st,
		model:        model,
		budget:       budget,
		rels:         rels,
		rng:          rng,
		MaxProposals: 32,
		maskL:        joingraph.NewBitset(n),
		maskR:        joingraph.NewBitset(n),
	}
}

// Budget exposes the shared budget.
func (s *Space) Budget() *cost.Budget { return s.budget }

// Cost prices a tree: the sum of join costs over internal nodes. The
// join selectivity between two subtrees multiplies the selectivities of
// all edges crossing between their leaf sets, with the dynamic
// distinct-value cap applied symmetrically (each side's distinct count
// is capped by that side's subtree size) when the statistics are in
// dynamic mode. Charges plan.EvalUnitsPerJoin per internal node.
func (s *Space) Cost(t *Tree) float64 {
	c, _ := s.costAndSize(t)
	// +Inf is legitimate saturation on estimator overflow; NaN would
	// poison every downstream incumbent comparison.
	if invariant.Enabled {
		invariant.NotNaN(c, "bushy tree cost")
	}
	return c
}

func (s *Space) costAndSize(t *Tree) (costSum, size float64) {
	if t.IsLeaf() {
		return 0, s.stats.Cardinality(t.Rel)
	}
	cl, sl := s.costAndSize(t.Left)
	cr, sr := s.costAndSize(t.Right)
	sel := s.crossSelectivity(t.Left, t.Right, sl, sr)
	size = sl * sr * sel
	s.budget.Charge(plan.EvalUnitsPerJoin)
	return cl + cr + s.model.JoinCost(sl, sr, size), size
}

// crossSelectivity multiplies the selectivities of all edges between
// the two subtrees' leaf sets.
func (s *Space) crossSelectivity(l, r *Tree, sizeL, sizeR float64) float64 {
	s.maskL.Reset()
	s.maskR.Reset()
	for _, rel := range l.Leaves(nil) {
		s.maskL.Set(rel)
	}
	for _, rel := range r.Leaves(nil) {
		s.maskR.Set(rel)
	}
	sel := 1.0
	dynamic := s.stats.Dynamic()
	for _, e := range s.stats.Graph().Edges() {
		var dl, dr float64
		switch {
		case s.maskL.Test(e.From) && s.maskR.Test(e.To):
			dl, dr = e.FromDistinct, e.ToDistinct
		case s.maskL.Test(e.To) && s.maskR.Test(e.From):
			dl, dr = e.ToDistinct, e.FromDistinct
		default:
			continue
		}
		if j, ok := e.FromHist.JoinSelectivity(e.ToHist); ok {
			sel *= j
			continue
		}
		if dl < 1 || dr < 1 {
			sel *= e.Selectivity
			continue
		}
		// See estimate.SelectivityInto: residual preserves merged and
		// explicit selectivities beyond the distinct-count model.
		residual := e.Selectivity * math.Max(dl, dr)
		if dynamic {
			dl = math.Min(dl, math.Max(sizeL, 1e-12))
			dr = math.Min(dr, math.Max(sizeR, 1e-12))
		}
		sel *= residual / math.Max(dl, dr)
	}
	return sel
}

// FromPerm converts a left-deep permutation into the equivalent bushy
// tree (a left spine).
func FromPerm(p plan.Perm) *Tree {
	if len(p) == 0 {
		return nil
	}
	t := &Tree{Rel: p[0]}
	for _, r := range p[1:] {
		t = &Tree{Left: t, Right: &Tree{Rel: r}}
	}
	return t
}

// RandomTree grows a random bushy tree agglomeratively: start from the
// leaf forest and repeatedly join two random roots, preferring pairs
// connected by a join edge so cross products appear only when forced.
func (s *Space) RandomTree() *Tree {
	forest := make([]*Tree, 0, len(s.rels))
	for _, r := range s.rels {
		forest = append(forest, &Tree{Rel: r})
	}
	leafSets := make([][]catalog.RelID, len(forest))
	for i, t := range forest {
		leafSets[i] = []catalog.RelID{t.Rel}
	}
	connected := func(a, b int) bool {
		s.maskL.Reset()
		for _, r := range leafSets[b] {
			s.maskL.Set(r)
		}
		g := s.stats.Graph()
		for _, r := range leafSets[a] {
			s.budget.Charge(1)
			if g.JoinsInto(r, s.maskL) {
				return true
			}
		}
		return false
	}
	for len(forest) > 1 {
		// Pick a random first root, then a random joinable partner
		// (falling back to any partner when none joins).
		i := s.rng.Intn(len(forest))
		var candidates []int
		for j := range forest {
			if j != i && connected(i, j) {
				candidates = append(candidates, j)
			}
		}
		var j int
		if len(candidates) > 0 {
			j = candidates[s.rng.Intn(len(candidates))]
		} else {
			j = s.rng.Intn(len(forest) - 1)
			if j >= i {
				j++
			}
		}
		joined := &Tree{Left: forest[i], Right: forest[j]}
		merged := append(append([]catalog.RelID{}, leafSets[i]...), leafSets[j]...)
		// Remove j then i (careful with ordering).
		hi, lo := i, j
		if hi < lo {
			hi, lo = lo, hi
		}
		forest = append(forest[:hi], forest[hi+1:]...)
		leafSets = append(leafSets[:hi], leafSets[hi+1:]...)
		forest = append(forest[:lo], forest[lo+1:]...)
		leafSets = append(leafSets[:lo], leafSets[lo+1:]...)
		forest = append(forest, joined)
		leafSets = append(leafSets, merged)
	}
	return forest[0]
}

// Neighbor proposes a random tree move and returns the mutated clone
// with its cost. The move set is the classical bushy one:
//
//   - commute: swap an internal node's children;
//   - associate: rotate (A ⋈ B) ⋈ C → A ⋈ (B ⋈ C) or its mirror;
//   - exchange: swap two disjoint subtrees.
func (s *Space) Neighbor(t *Tree) (*Tree, float64, bool) {
	for attempt := 0; attempt < s.MaxProposals; attempt++ {
		cand := t.Clone()
		var ok bool
		switch s.rng.Intn(3) {
		case 0:
			ok = s.commute(cand)
		case 1:
			ok = s.associate(cand)
		default:
			ok = s.exchange(cand)
		}
		if !ok {
			continue
		}
		return cand, s.Cost(cand), true
	}
	return nil, 0, false
}

func (s *Space) commute(t *Tree) bool {
	nodes := t.internalNodes(nil)
	if len(nodes) == 0 {
		return false
	}
	n := nodes[s.rng.Intn(len(nodes))]
	n.Left, n.Right = n.Right, n.Left
	return true
}

func (s *Space) associate(t *Tree) bool {
	nodes := t.internalNodes(nil)
	s.rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	for _, n := range nodes {
		if !n.Left.IsLeaf() {
			// (A ⋈ B) ⋈ C → A ⋈ (B ⋈ C)
			a, b, c := n.Left.Left, n.Left.Right, n.Right
			n.Left = a
			n.Right = &Tree{Left: b, Right: c}
			return true
		}
		if !n.Right.IsLeaf() {
			// A ⋈ (B ⋈ C) → (A ⋈ B) ⋈ C
			a, b, c := n.Left, n.Right.Left, n.Right.Right
			n.Left = &Tree{Left: a, Right: b}
			n.Right = c
			return true
		}
	}
	return false
}

func (s *Space) exchange(t *Tree) bool {
	if t.IsLeaf() {
		return false
	}
	// Swap the left subtree of one internal node with the right subtree
	// of another, when disjoint. Pick two random internal nodes.
	nodes := t.internalNodes(nil)
	a := nodes[s.rng.Intn(len(nodes))]
	b := nodes[s.rng.Intn(len(nodes))]
	if a == b {
		a.Left, a.Right = a.Right, a.Left
		return true
	}
	// Disjointness: neither subtree may contain the other's swap point.
	if contains(a.Left, b) || contains(b.Right, a) {
		return false
	}
	a.Left, b.Right = b.Right, a.Left
	return true
}

// contains reports whether node x occurs in the subtree t.
func contains(t, x *Tree) bool {
	if t == nil {
		return false
	}
	if t == x {
		return true
	}
	if t.IsLeaf() {
		return false
	}
	return contains(t.Left, x) || contains(t.Right, x)
}

// GOO runs Greedy Operator Ordering (Fegaras 1998) — the classical
// agglomerative heuristic over bushy trees: repeatedly join the pair of
// subtrees whose join result is smallest, preferring connected pairs
// (cross products only when forced). Deterministic; budget is charged
// one unit per pair sized plus the usual evaluation charge for the
// final tree cost.
func (s *Space) GOO() (*Tree, float64) {
	type entry struct {
		tree *Tree
		size float64
	}
	forest := make([]entry, 0, len(s.rels))
	for _, r := range s.rels {
		forest = append(forest, entry{&Tree{Rel: r}, s.stats.Cardinality(r)})
	}
	budget := s.budget
	for len(forest) > 1 {
		bi, bj := -1, -1
		bestSize := math.Inf(1)
		bestConnected := false
		for i := 0; i < len(forest); i++ {
			for j := i + 1; j < len(forest); j++ {
				sel := s.crossSelectivity(forest[i].tree, forest[j].tree, forest[i].size, forest[j].size)
				budget.Charge(1)
				connected := sel != 1.0 || s.pairConnected(forest[i].tree, forest[j].tree)
				size := forest[i].size * forest[j].size * sel
				// Connected pairs always beat cross products; among the
				// same class, smaller result wins.
				if (connected && !bestConnected) ||
					(connected == bestConnected && size < bestSize) {
					bi, bj, bestSize, bestConnected = i, j, size, connected
				}
			}
		}
		joined := entry{
			tree: &Tree{Left: forest[bi].tree, Right: forest[bj].tree},
			size: bestSize,
		}
		forest[bj] = forest[len(forest)-1]
		forest = forest[:len(forest)-1]
		if bi == len(forest) {
			bi = bj
		}
		forest[bi] = joined
	}
	t := forest[0].tree
	return t, s.Cost(t)
}

// pairConnected reports whether any join edge crosses between the two
// subtrees' leaf sets.
func (s *Space) pairConnected(l, r *Tree) bool {
	s.maskL.Reset()
	for _, rel := range r.Leaves(nil) {
		s.maskL.Set(rel)
	}
	g := s.stats.Graph()
	for _, rel := range l.Leaves(nil) {
		if g.JoinsInto(rel, s.maskL) {
			return true
		}
	}
	return false
}

// Improve runs iterative improvement over bushy trees from random
// starts until the budget is exhausted, mirroring the linear II driver:
// descend while improving, restart when a local minimum (a streak of
// rejections proportional to the move neighborhood) is reached.
func (s *Space) Improve(cfg IIConfig) (*Tree, float64, bool) {
	var best *Tree
	bestCost := math.Inf(1)
	ok := false
	for !s.budget.Exhausted() {
		start := s.RandomTree()
		c := s.Cost(start)
		end, endCost := s.descend(cfg, start, c)
		if endCost < bestCost {
			best, bestCost, ok = end, endCost, true
		}
	}
	return best, bestCost, ok
}

// IIConfig mirrors search.IIConfig for the bushy space.
type IIConfig struct {
	RejectFactor float64
	MinRejects   int
}

// DefaultIIConfig returns thresholds matched to the linear defaults.
func DefaultIIConfig() IIConfig { return IIConfig{RejectFactor: 0.5, MinRejects: 16} }

func (c IIConfig) threshold(n int) int {
	t := int(c.RejectFactor * float64(n) * float64(n-1) / 2)
	if t < c.MinRejects {
		t = c.MinRejects
	}
	return t
}

func (s *Space) descend(cfg IIConfig, start *Tree, startCost float64) (*Tree, float64) {
	cur, curCost := start, startCost
	threshold := cfg.threshold(len(s.rels))
	rejects := 0
	for rejects < threshold && !s.budget.Exhausted() {
		next, nextCost, ok := s.Neighbor(cur)
		if !ok {
			break
		}
		if nextCost < curCost {
			cur, curCost = next, nextCost
			rejects = 0
		} else {
			rejects++
		}
	}
	return cur, curCost
}
