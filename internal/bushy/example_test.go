package bushy_test

import (
	"fmt"
	"math/rand"

	"joinopt/internal/bushy"
	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

// ExampleSpace_GOO runs Greedy Operator Ordering on a snowflake chain:
// it joins the smallest-result pair first, producing a bushy tree.
func ExampleSpace_GOO() {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "fact", Cardinality: 100000},
			{Name: "dim", Cardinality: 500},
			{Name: "sub", Cardinality: 20},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 500, RightDistinct: 500},
			{Left: 1, Right: 2, LeftDistinct: 20, RightDistinct: 20},
		},
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	sp := bushy.NewSpace(st, cost.NewMemoryModel(), cost.Unlimited(),
		g.Components()[0], rand.New(rand.NewSource(1)))
	tree, c := sp.GOO()
	fmt.Printf("%s cost %.4g\n", tree, c)
	// Output: (R0 ⋈ (R1 ⋈ R2)) cost 2.02e+05
}

// ExampleFromPerm shows that a left-deep permutation is just a bushy
// left spine, and prices identically in both spaces.
func ExampleFromPerm() {
	t := bushy.FromPerm(plan.Perm{2, 1, 0})
	fmt.Println(t)
	// Output: ((R2 ⋈ R1) ⋈ R0)
}
