package bushy

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/workload"
)

func spaceFor(n int, seed int64, static bool, budget *cost.Budget) (*Space, *plan.Evaluator, []catalog.RelID) {
	q := workload.Default().Generate(n, rand.New(rand.NewSource(seed)))
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	if static {
		st.UseStaticSelectivity()
	}
	if budget == nil {
		budget = cost.Unlimited()
	}
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), budget)
	comp := g.Components()[0]
	return NewSpace(st, cost.NewMemoryModel(), budget, comp, rand.New(rand.NewSource(seed+1))), eval, comp
}

func leavesSorted(t *Tree) []catalog.RelID {
	ls := t.Leaves(nil)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	return ls
}

func TestRandomTreeCoversComponent(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%12)
		sp, _, comp := spaceFor(n, seed, false, nil)
		tree := sp.RandomTree()
		ls := leavesSorted(tree)
		if len(ls) != len(comp) {
			return false
		}
		want := append([]catalog.RelID(nil), comp...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if ls[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMovesPreserveLeafSet: every move yields a tree over the same
// relations.
func TestMovesPreserveLeafSet(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%10)
		sp, _, _ := spaceFor(n, seed, false, nil)
		tree := sp.RandomTree()
		want := leavesSorted(tree)
		for k := 0; k < 10; k++ {
			next, _, ok := sp.Neighbor(tree)
			if !ok {
				continue
			}
			got := leavesSorted(next)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			tree = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborDoesNotMutateInput(t *testing.T) {
	sp, _, _ := spaceFor(8, 5, false, nil)
	tree := sp.RandomTree()
	before := tree.String()
	sp.Neighbor(tree)
	if tree.String() != before {
		t.Fatal("Neighbor mutated its input")
	}
}

func TestImproveRespectsBudget(t *testing.T) {
	b := cost.NewBudget(2000)
	sp, _, _ := spaceFor(15, 9, false, b)
	_, _, ok := sp.Improve(DefaultIIConfig())
	if !ok {
		t.Fatal("no result")
	}
	slack := int64(16*plan.EvalUnitsPerJoin) + 16*16
	if b.Used() > b.Limit()+slack {
		t.Fatalf("budget overshoot: %d of %d", b.Used(), b.Limit())
	}
}

func TestTreeHelpers(t *testing.T) {
	tree := FromPerm(plan.Perm{1, 2, 3})
	if tree.String() != "((R1 ⋈ R2) ⋈ R3)" {
		t.Fatalf("spine rendering: %s", tree.String())
	}
	c := tree.Clone()
	c.Left.Left.Rel = 9
	if tree.Left.Left.Rel == 9 {
		t.Fatal("clone aliases")
	}
	if FromPerm(nil) != nil {
		t.Fatal("empty perm should give nil tree")
	}
	if len(tree.internalNodes(nil)) != 2 || len(tree.allNodes(nil)) != 5 {
		t.Fatal("node enumeration wrong")
	}
	if !contains(tree, tree.Left) || contains(tree.Left, tree) {
		t.Fatal("contains broken")
	}
}

func TestIIConfigThreshold(t *testing.T) {
	cfg := DefaultIIConfig()
	if cfg.threshold(3) != 16 {
		t.Fatal("floor")
	}
	if cfg.threshold(50) != 612 {
		t.Fatal("formula")
	}
}

func TestGOOCoversComponentAndIsDecent(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%10)
		sp, _, comp := spaceFor(n, seed, true, nil)
		tree, c := sp.GOO()
		ls := leavesSorted(tree)
		if len(ls) != len(comp) || c <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGOODeterministic(t *testing.T) {
	run := func() float64 {
		sp, _, _ := spaceFor(10, 21, true, nil)
		_, c := sp.GOO()
		return c
	}
	if run() != run() {
		t.Fatal("GOO not deterministic")
	}
}
