package bushy_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"joinopt/internal/bushy"
	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/dp"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/workload"
)

// extSpace builds a bushy space plus a matching linear evaluator over a
// benchmark query (external-test twin of the internal helper; this file
// lives outside the package so it can import dp, which imports bushy).
func extSpace(n int, seed int64, budget *cost.Budget) (*bushy.Space, *plan.Evaluator, []catalog.RelID) {
	q := workload.Default().Generate(n, rand.New(rand.NewSource(seed)))
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	if budget == nil {
		budget = cost.Unlimited()
	}
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), budget)
	comp := g.Components()[0]
	return bushy.NewSpace(st, cost.NewMemoryModel(), budget, comp, rand.New(rand.NewSource(seed+1))), eval, comp
}

// TestLeftDeepCostsAgree: a left-deep permutation priced as a bushy
// tree must cost exactly what the linear evaluator says (same model,
// same estimator), because a left spine IS the permutation.
func TestLeftDeepCostsAgree(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%10)
		sp, eval, comp := extSpace(n, seed, nil)
		perm, _, err := dp.Optimal(eval, comp)
		if err != nil {
			return false
		}
		linear := eval.Cost(perm)
		bush := sp.Cost(bushy.FromPerm(perm))
		return math.Abs(linear-bush) <= linear*1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBushyAgainstBushyDP: bushy II with a generous budget should land
// near the exact bushy optimum on small queries. The II space is a
// strict superset of the DP's (DP enumerates only cross-product-free
// trees, while II prices cross products honestly), so II may undercut
// the DP value slightly — but a large gap either way means the two cost
// semantics diverged.
func TestBushyAgainstBushyDP(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		b := cost.NewBudget(cost.UnitsFor(30, 8))
		sp, eval, comp := extSpace(8, seed, b)
		_, optCost, err := dp.BushyOptimal(eval, comp)
		if err != nil {
			t.Fatal(err)
		}
		_, iiCost, ok := sp.Improve(bushy.DefaultIIConfig())
		if !ok {
			t.Fatal("bushy II produced nothing")
		}
		if iiCost < optCost*0.9 {
			t.Fatalf("seed %d: bushy II (%g) far below the valid-tree optimum (%g)", seed, iiCost, optCost)
		}
		if iiCost > optCost*20 {
			t.Fatalf("seed %d: bushy II (%g) wildly off the optimum (%g)", seed, iiCost, optCost)
		}
	}
}

// TestGOONearBushyOptimum: GOO is a strong greedy; on small queries it
// should land within a modest factor of the exact bushy optimum and
// never beat it.
func TestGOONearBushyOptimum(t *testing.T) {
	worstRatio := 1.0
	for seed := int64(1); seed <= 10; seed++ {
		sp, eval, comp := extSpace(8, seed, nil)
		_, opt, err := dp.BushyOptimal(eval, comp)
		if err != nil {
			t.Fatal(err)
		}
		_, c := sp.GOO()
		if c < opt*(1-1e-9) {
			t.Fatalf("seed %d: GOO (%g) beat the bushy optimum (%g)", seed, c, opt)
		}
		if r := c / opt; r > worstRatio {
			worstRatio = r
		}
	}
	if worstRatio > 50 {
		t.Fatalf("GOO wildly off the optimum: worst ratio %g", worstRatio)
	}
}
