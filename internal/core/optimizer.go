package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/heuristics"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/search"
	"joinopt/internal/telemetry"
)

// Options tunes a strategy run. The zero value selects the paper's
// defaults (criterion 3 everywhere, [SG88]/[JAMS87] parameters).
type Options struct {
	// IIConfig tunes iterative improvement; zero value = defaults.
	IIConfig search.IIConfig
	// SAConfig tunes simulated annealing; zero value = defaults.
	SAConfig search.SAConfig
	// Criterion is the augmentation chooseNext criterion (default 3,
	// min join selectivity — the Table 1 winner).
	Criterion heuristics.Criterion
	// Weight is the KBZ spanning-tree edge weight (default 3, join
	// selectivity — the Table 2 winner).
	Weight heuristics.WeightCriterion
	// StaticEstimator disables dynamic distinct-value propagation in
	// the size estimator. Required when comparing against the DP
	// baseline (whose optimality needs order-independent estimates).
	StaticEstimator bool
	// InsertMoveProb adds relation re-insertion moves to the move set
	// with the given probability (0 = the [SG88] swap-only default).
	// Kept as an ablation knob; see BenchmarkAblationMoveSet.
	InsertMoveProb float64
	// Incumbent, if non-empty, is a join order offered as the starting
	// incumbent before any strategy runs: its restriction to each
	// component is priced (charging the budget as usual) and fed to the
	// tracker, so the final plan is never worse than the incumbent under
	// this optimizer's cost function. The tiered serving layer passes
	// the greedy Tier-1 order here as the warm start for the background
	// upgrade. A restriction that is invalid or does not cover its
	// component is silently ignored — the warm start is an optimization,
	// never a correctness input.
	Incumbent plan.Perm
	// OnImprove, if non-nil, is invoked whenever the incumbent best
	// total cost improves, with the new cost and the budget units
	// consumed so far. Experiment harnesses use it to read off
	// best-so-far curves at checkpoint budgets.
	OnImprove func(cost float64, used int64)
	// Trace, if non-nil, receives the run's search-trace events
	// (strategy start/end, move proposed/accepted/rejected, restarts,
	// incumbent improvements, degradation steps), each stamped with the
	// budget meter instead of the wall clock, so two runs of the same
	// seed and budget trace byte-identically. nil (the default) is the
	// zero-overhead path: every emission site is behind a nil check.
	Trace *telemetry.Tracer
}

func (o *Options) fill() {
	if o.IIConfig == (search.IIConfig{}) {
		o.IIConfig = search.DefaultIIConfig()
	}
	if o.SAConfig == (search.SAConfig{}) {
		o.SAConfig = search.DefaultSAConfig()
	}
	if o.Criterion == 0 {
		o.Criterion = heuristics.CriterionMinSel
	}
	if o.Weight == 0 {
		o.Weight = heuristics.WeightSelectivity
	}
}

// Optimizer runs one strategy over one query under one budget.
type Optimizer struct {
	query  *catalog.Query
	graph  *joingraph.Graph
	stats  *estimate.Stats
	eval   *plan.Evaluator
	budget *cost.Budget
	rng    *rand.Rand
	opts   Options
}

// NewOptimizer prepares an optimizer. The query must validate; it is
// normalized in place. budget may be cost.Unlimited().
func NewOptimizer(q *catalog.Query, model cost.Model, budget *cost.Budget, rng *rand.Rand, opts Options) (*Optimizer, error) {
	if q == nil {
		return nil, errors.New("core: nil query")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q.Normalize()
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	opts.fill()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	if opts.StaticEstimator {
		st.UseStaticSelectivity()
	}
	return &Optimizer{
		query:  q,
		graph:  g,
		stats:  st,
		eval:   plan.NewEvaluator(st, model, budget),
		budget: budget,
		rng:    rng,
		opts:   opts,
	}, nil
}

// Evaluator exposes the optimizer's plan evaluator (tests and tools).
func (o *Optimizer) Evaluator() *plan.Evaluator { return o.eval }

// PanicError wraps a panic recovered from a strategy phase. RunContext
// returns it alongside the degraded fallback plan so callers (the
// portfolio, a service layer) can record the crash without losing the
// plan.
type PanicError struct {
	Method Method
	Value  any
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: strategy %v panicked: %v", e.Method, e.Value)
}

// Unwrap exposes a panic value that is itself an error (for example a
// *faultinject.Fault) to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Run executes the strategy and returns the best complete plan found.
// Queries whose join graph is disconnected are handled per the
// postpone-cross-products heuristic: each component is optimized
// separately (the budget is shared) and the results are combined
// cheapest-first by cross products.
//
// Run is RunContext with a background context; see RunContext for the
// anytime contract.
func (o *Optimizer) Run(m Method) (*plan.Plan, error) {
	//ljqlint:allow ctxflow -- public no-context compatibility wrapper: Run is documented as RunContext with a fresh background chain; callers wanting cancellation use RunContext
	return o.RunContext(context.Background(), m)
}

// RunContext is Run under a context: cancelling ctx (or its deadline
// passing) cancels the optimizer's budget, which stops every phase of
// the strategy at its next budget poll.
//
// RunContext is an *anytime* interface — it always returns a valid,
// complete plan, never (nil, err):
//
//   - On normal completion or ordinary unit-limit exhaustion, the best
//     plan found; plan.Degraded is false.
//   - On cancellation, the incumbent at the stop point, flagged
//     Degraded with reason plan.DegradeCancelled.
//   - If a strategy phase panics (a cost-model crash, say), the panic
//     is recovered, the incumbent found before the crash survives, and
//     the plan is flagged plan.DegradePanic. The recovered panic is
//     also returned as a *PanicError so callers can log it — the plan
//     accompanying a non-nil error is still valid.
//   - If no search result exists at all (zero budget, immediate cancel,
//     panic on the first evaluation), RunContext falls back through the
//     deterministic augmentation heuristic and finally a random valid
//     state (plan.DegradeStarved, unless a panic/cancel reason already
//     applies).
func (o *Optimizer) RunContext(ctx context.Context, m Method) (*plan.Plan, error) {
	if ctx != nil {
		o.budget.WithContext(ctx)
	}
	comps := o.graph.Components()
	results := make([]plan.Result, 0, len(comps))
	// Optimize large components first: they dominate cost, so they
	// deserve the budget when it is tight.
	orderComponentsBySize(o.stats, comps)
	multi := len(comps) > 1
	var panicErr *PanicError
	starved := false
	for _, comp := range comps {
		if len(comp) == 1 {
			results = append(results, plan.Result{
				Perm: plan.Perm{comp[0]},
				Cost: 0,
			})
			continue
		}
		sp := search.NewSpace(o.eval, comp, o.rng)
		sp.Trace = o.opts.Trace
		if o.opts.InsertMoveProb > 0 {
			sp.SwapWeight = 1 - o.opts.InsertMoveProb
		}
		onImprove := o.opts.OnImprove
		if multi {
			// Per-component incumbents do not translate to a total-plan
			// cost until assembly; suppress intermediate callbacks.
			onImprove = nil
		}
		t := newTracker(o.budget, onImprove, o.opts.Trace)
		if perr := o.runComponentIsolated(m, comp, sp, t); perr != nil && panicErr == nil {
			panicErr = perr
		}
		best, bestCost := t.best, t.bestCost
		if !t.ok {
			// No state was produced at all (budget exhausted or cancelled
			// before the first evaluation, or the strategy crashed
			// immediately): fall back to a deterministic valid state so a
			// plan always exists (the paper's optimizers likewise always
			// return *some* plan; quality is what the budget buys).
			best, bestCost = o.fallbackState(sp)
			starved = true
		} else if !t.finite {
			// Only non-finite incumbents (fault-corrupted costs): prefer
			// the deterministic fallback over a poisoned plan. Its cost
			// is finite or +Inf (safeCost coerces), never NaN, so NaN
			// cannot leak into the assembled total.
			best, bestCost = o.fallbackState(sp)
			starved = true
		}
		results = append(results, plan.Result{Perm: best, Cost: bestCost})
	}
	pl := safeAssemble(o.eval, results)
	switch {
	case panicErr != nil:
		pl.Degraded = true
		pl.DegradeReason = plan.DegradePanic + ": " + fmt.Sprint(panicErr.Value)
	case o.budget.Cancelled():
		pl.Degraded = true
		pl.DegradeReason = plan.DegradeCancelled
	case starved:
		pl.Degraded = true
		pl.DegradeReason = plan.DegradeStarved
	}
	if pl.Degraded {
		// The final verdict of the degradation ladder. The label keeps
		// only the reason class (the panic payload may carry addresses,
		// which would break byte-identical traces).
		reason, _, _ := strings.Cut(pl.DegradeReason, ":")
		o.opts.Trace.Emit(telemetry.EvDegrade, o.budget.Used(), reason)
	}
	if multi && o.opts.OnImprove != nil && isFinite(pl.TotalCost) {
		o.opts.OnImprove(pl.TotalCost, o.budget.Used())
	}
	if panicErr != nil {
		return pl, panicErr
	}
	return pl, nil
}

// runComponentIsolated runs one component's strategy behind a panic
// barrier: a crash in search, heuristic or cost-model code is recovered
// and reported, and the tracker's incumbent survives. The warm-start
// offer runs inside the same barrier, so a fault while pricing the
// incumbent degrades the run honestly instead of crashing it.
func (o *Optimizer) runComponentIsolated(m Method, comp []catalog.RelID, sp *search.Space, t *tracker) (perr *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			perr = &PanicError{Method: m, Value: r}
		}
	}()
	o.offerIncumbent(comp, t)
	o.runComponent(m, sp, t)
	return nil
}

// offerIncumbent seeds the tracker with the restriction of
// Options.Incumbent to comp, if that restriction is a valid complete
// order of the component. Pricing charges the budget like any other
// evaluation; an unusable incumbent is ignored.
func (o *Optimizer) offerIncumbent(comp []catalog.RelID, t *tracker) {
	inc := o.opts.Incumbent
	if len(inc) == 0 {
		return
	}
	in := make([]bool, o.query.NumRelations())
	for _, r := range comp {
		in[r] = true
	}
	sub := make(plan.Perm, 0, len(comp))
	for _, r := range inc {
		if int(r) >= 0 && int(r) < len(in) && in[r] {
			in[r] = false
			sub = append(sub, r)
		}
	}
	if len(sub) != len(comp) || !o.eval.Valid(sub) {
		return
	}
	t.offer(sub, o.eval.Cost(sub))
}

// fallbackState produces a valid state for a component when search
// yielded nothing: first the deterministic augmentation heuristic (the
// paper's cheapest reliable plan generator), then a random valid state.
// Each step is panic-isolated so an injected cost-evaluation fault
// cannot strip the anytime guarantee; a state whose cost cannot be
// computed is priced +Inf rather than dropped.
func (o *Optimizer) fallbackState(sp *search.Space) (plan.Perm, float64) {
	if p, c, ok := o.augmentFallback(sp); ok {
		o.opts.Trace.Emit(telemetry.EvDegrade, o.budget.Used(), "fallback-augmentation")
		return p, c
	}
	o.opts.Trace.Emit(telemetry.EvDegrade, o.budget.Used(), "fallback-random")
	p := sp.RandomState()
	return p, o.safeCost(p)
}

// augmentFallback grows one deterministic augmentation state. ok is
// false if generation itself crashed.
func (o *Optimizer) augmentFallback(sp *search.Space) (p plan.Perm, c float64, ok bool) {
	defer func() {
		if recover() != nil {
			p, c, ok = nil, 0, false
		}
	}()
	aug := heuristics.NewAugmentation(o.eval, sp.Relations(), o.opts.Criterion)
	p, ok = aug.NextStart()
	if !ok {
		return nil, 0, false
	}
	return p, o.safeCost(p), true
}

// safeCost prices p, converting a panicking or non-finite evaluation
// into +Inf (the plan is still returned; only its price is unknown).
func (o *Optimizer) safeCost(p plan.Perm) (c float64) {
	defer func() {
		if recover() != nil {
			c = math.Inf(1)
		}
	}()
	c = o.eval.Cost(p)
	if !isFinite(c) {
		c = math.Inf(1)
	}
	return c
}

// safeAssemble assembles the final plan behind a panic barrier: if
// pricing the cross products crashes (injected faults), the components
// are still combined, with the cross cost marked unknown (+Inf).
func safeAssemble(e *plan.Evaluator, results []plan.Result) (pl *plan.Plan) {
	defer func() {
		if recover() != nil {
			pl = &plan.Plan{Components: results, CrossCost: math.Inf(1), TotalCost: math.Inf(1)}
		}
	}()
	return plan.Assemble(e, results)
}

func isFinite(c float64) bool { return !math.IsNaN(c) && !math.IsInf(c, 0) }

func orderComponentsBySize(st *estimate.Stats, comps [][]catalog.RelID) {
	size := func(comp []catalog.RelID) float64 {
		s := 0.0
		for _, r := range comp {
			s += st.Cardinality(r)
		}
		return s
	}
	// Insertion sort by descending total cardinality (few components).
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && size(comps[j]) > size(comps[j-1]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
}

// tracker keeps the incumbent best of one component run and fires the
// improvement callback.
type tracker struct {
	best     plan.Perm
	bestCost float64
	ok       bool
	// finite reports that the incumbent's cost is a real number. A
	// non-finite offer (NaN/±Inf — estimator overflow or an injected
	// fault) is held only while no finite incumbent exists; any finite
	// offer replaces it. Without this guard the unconditional first
	// accept made NaN sticky: `c < NaN` is always false, so a poisoned
	// first offer froze the incumbent forever.
	finite    bool
	budget    *cost.Budget
	onImprove func(float64, int64)
	trace     *telemetry.Tracer
}

func newTracker(b *cost.Budget, onImprove func(float64, int64), trace *telemetry.Tracer) *tracker {
	return &tracker{bestCost: math.Inf(1), budget: b, onImprove: onImprove, trace: trace}
}

func (t *tracker) offer(p plan.Perm, c float64) {
	if !isFinite(c) {
		// Keep a non-finite state only as a last resort (so *some* valid
		// permutation exists), and never report it as an improvement.
		if !t.ok {
			t.best, t.bestCost, t.ok = p, c, true
		}
		return
	}
	if !t.ok || !t.finite || c < t.bestCost {
		t.best, t.bestCost, t.ok, t.finite = p, c, true, true
		if t.onImprove != nil {
			t.onImprove(c, t.budget.Used())
		}
		if tr := t.trace; tr != nil {
			tr.EmitCost(telemetry.EvImprove, t.budget.Used(), c, "")
		}
	}
}

// runComponent dispatches one strategy over one component's search
// space, streaming states into the tracker. An unknown method leaves
// the tracker empty; the caller's fallback chain takes over.
func (o *Optimizer) runComponent(m Method, sp *search.Space, t *tracker) {
	if tr := t.trace; tr != nil {
		tr.Emit(telemetry.EvStrategyStart, o.budget.Used(), m.String())
		defer func() {
			// The end event carries the component incumbent (or +Inf if
			// the strategy produced nothing — the fallback ladder's
			// problem now).
			tr.EmitCost(telemetry.EvStrategyEnd, o.budget.Used(), t.bestCost, m.String())
		}()
	}
	switch m {
	case II:
		o.iterativeImprovement(sp, t, search.RandomStarts{Space: sp})
	case SA:
		o.annealFrom(sp, t, sp.RandomState())
	case SAA:
		aug := heuristics.NewAugmentation(o.eval, sp.Relations(), o.opts.Criterion)
		start, ok := aug.NextStart()
		if !ok {
			start = sp.RandomState()
		}
		o.annealFrom(sp, t, start)
	case SAK:
		// The KBZ state is expensive to produce; stream every root's
		// order through the incumbent so SAK has *an* answer at any
		// stop time, then anneal from the best of them.
		kbz := heuristics.NewKBZ(o.eval, sp.Relations(), o.opts.Weight)
		for !o.budget.Exhausted() {
			p, more := kbz.NextStart()
			if !more {
				break
			}
			t.offer(p, o.eval.Cost(p))
		}
		start := t.best
		if !t.ok {
			start = sp.RandomState()
			t.offer(start, o.eval.Cost(start))
		}
		o.annealFrom(sp, t, start)
	case IAI:
		aug := heuristics.NewAugmentation(o.eval, sp.Relations(), o.opts.Criterion)
		o.iterativeImprovement(sp, t, chainStarts{aug, search.RandomStarts{Space: sp}})
	case IKI:
		kbz := heuristics.NewKBZ(o.eval, sp.Relations(), o.opts.Weight)
		o.iterativeImprovement(sp, t, chainStarts{kbz, search.RandomStarts{Space: sp}})
	case IAL:
		o.ial(sp, t)
	case AGI:
		aug := heuristics.NewAugmentation(o.eval, sp.Relations(), o.opts.Criterion)
		o.generateThenImprove(sp, t, aug)
	case KBI:
		kbz := heuristics.NewKBZ(o.eval, sp.Relations(), o.opts.Weight)
		o.generateThenImprove(sp, t, kbz)
	case AugOnly:
		aug := heuristics.NewAugmentation(o.eval, sp.Relations(), o.opts.Criterion)
		o.generateOnly(t, aug)
	case KBZOnly:
		kbz := heuristics.NewKBZ(o.eval, sp.Relations(), o.opts.Weight)
		o.generateOnly(t, kbz)
	case TPO:
		o.twoPhase(sp, t)
	case PW:
		o.perturbationWalk(sp, t)
	case GA:
		best, c, ok := search.Genetic(sp, search.DefaultGAConfig(), t.offer)
		if ok {
			t.offer(best, c)
		}
	case TS:
		best, c, ok := search.Tabu(sp, search.DefaultTabuConfig(), t.offer)
		if ok {
			t.offer(best, c)
		}
	}
}

// chainStarts concatenates two start-state sources.
type chainStarts struct{ first, then search.StartStater }

func (c chainStarts) NextStart() (plan.Perm, bool) {
	if p, ok := c.first.NextStart(); ok {
		return p, true
	}
	return c.then.NextStart()
}

// iterativeImprovement runs II repeatedly from the start source until
// the budget is exhausted, tracking the best local minimum. This is the
// II / IAI / IKI engine.
func (o *Optimizer) iterativeImprovement(sp *search.Space, t *tracker, starts search.StartStater) {
	for runs := 0; !o.budget.Exhausted(); runs++ {
		start, more := starts.NextStart()
		if !more {
			return
		}
		if runs > 0 {
			if tr := t.trace; tr != nil {
				tr.Emit(telemetry.EvRestart, o.budget.Used(), "ii-next-start")
			}
		}
		c := o.eval.Cost(start)
		t.offer(start, c)
		endState, endCost := search.ImproveRunObserved(sp, o.opts.IIConfig, start, c, t.offer)
		t.offer(endState, endCost)
	}
}

// generateThenImprove evaluates every state the heuristic generates
// directly (no descent), then spends the remaining budget on II from
// random states. This is the AGI / KBI engine.
func (o *Optimizer) generateThenImprove(sp *search.Space, t *tracker, gen search.StartStater) {
	for !o.budget.Exhausted() {
		p, more := gen.NextStart()
		if !more {
			break
		}
		t.offer(p, o.eval.Cost(p))
	}
	o.iterativeImprovement(sp, t, search.RandomStarts{Space: sp})
}

// generateOnly evaluates each state the heuristic produces and stops:
// the pure-heuristic baselines of Tables 1 and 2.
func (o *Optimizer) generateOnly(t *tracker, gen search.StartStater) {
	for !o.budget.Exhausted() {
		p, more := gen.NextStart()
		if !more {
			return
		}
		t.offer(p, o.eval.Cost(p))
	}
}

// perturbationWalk implements [SG88]'s perturbation walk: accept every
// valid move, remember the best state visited. No descent — the random
// baseline the 1988 paper showed both II and SA dominate.
func (o *Optimizer) perturbationWalk(sp *search.Space, t *tracker) {
	cur := sp.RandomState()
	curCost := o.eval.Cost(cur)
	t.offer(cur, curCost)
	for !o.budget.Exhausted() {
		next, nextCost, ok := sp.Neighbor(cur)
		if !ok {
			if tr := t.trace; tr != nil {
				tr.Emit(telemetry.EvRestart, o.budget.Used(), "walk-dead-end")
			}
			cur = sp.RandomState()
			curCost = o.eval.Cost(cur)
			t.offer(cur, curCost)
			continue
		}
		cur, curCost = next, nextCost
		t.offer(cur, curCost)
	}
}

// twoPhase implements the 2PO extension (Ioannidis & Kang 1990): spend
// a fraction of the budget on II runs from random starts, then anneal
// from the best local minimum with a cool starting temperature (small
// InitAccept) so SA only explores the neighborhood of the minimum.
func (o *Optimizer) twoPhase(sp *search.Space, t *tracker) {
	phase1 := o.budget.Limit() / 2
	for runs := 0; !o.budget.Exhausted() && (o.budget.Limit() <= 0 || o.budget.Used() < phase1); runs++ {
		if runs > 0 {
			if tr := t.trace; tr != nil {
				tr.Emit(telemetry.EvRestart, o.budget.Used(), "2po-next-start")
			}
		}
		start := sp.RandomState()
		c := o.eval.Cost(start)
		t.offer(start, c)
		endState, endCost := search.ImproveRunObserved(sp, o.opts.IIConfig, start, c, t.offer)
		t.offer(endState, endCost)
	}
	if !t.ok {
		start := sp.RandomState()
		t.offer(start, o.eval.Cost(start))
	}
	saCfg := o.opts.SAConfig
	saCfg.InitAccept = 0.05 // low temperature: stay near the minimum
	best, bestCost := search.AnnealObserved(sp, saCfg, t.best, t.bestCost, t.offer)
	t.offer(best, bestCost)
}

// annealFrom prices the start state and runs simulated annealing from
// it. This is the SA / SAA / SAK engine.
func (o *Optimizer) annealFrom(sp *search.Space, t *tracker, start plan.Perm) {
	c := o.eval.Cost(start)
	t.offer(start, c)
	best, bestCost := search.AnnealObserved(sp, o.opts.SAConfig, start, c, t.offer)
	t.offer(best, bestCost)
}

// ial implements IAL: II over the augmentation states, then repeated
// local-improvement passes on the best local minimum (the ladder picks
// the largest affordable (c,o) strategy), and finally — the paper leaves
// the tail unspecified — II from random states with any leftover budget.
func (o *Optimizer) ial(sp *search.Space, t *tracker) {
	aug := heuristics.NewAugmentation(o.eval, sp.Relations(), o.opts.Criterion)
	for !o.budget.Exhausted() {
		start, more := aug.NextStart()
		if !more {
			break
		}
		c := o.eval.Cost(start)
		t.offer(start, c)
		endState, endCost := search.ImproveRunObserved(sp, o.opts.IIConfig, start, c, t.offer)
		t.offer(endState, endCost)
	}
	for t.ok && !o.budget.Exhausted() {
		strat, ok := heuristics.ChooseStrategy(o.budget.Remaining(), len(t.best))
		if !ok {
			break
		}
		improved, improvedCost := heuristics.LocalImprove(o.eval, strat, t.best, t.bestCost)
		if improvedCost >= t.bestCost {
			break
		}
		t.offer(improved, improvedCost)
	}
	o.iterativeImprovement(sp, t, search.RandomStarts{Space: sp})
}
