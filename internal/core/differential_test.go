package core

import (
	"math"
	"math/rand"
	"testing"

	"joinopt/internal/cost"
	"joinopt/internal/dp"
	"joinopt/internal/workload"
)

// TestDifferentialOracle is the oracle-backed differential suite: for
// seeded queries small enough for exact dynamic programming (N ≤ 10),
// every one of the paper's nine strategies must produce a plan that is
//
//   - complete and valid (every relation exactly once, no hidden cross
//     products beyond what the join graph forces),
//   - finitely priced,
//   - never cheaper than the dp.Optimal left-deep optimum (a strategy
//     undercutting the exact oracle means the cost model is being
//     evaluated inconsistently somewhere), and
//   - within a generous sanity ratio of the optimum (metaheuristics on
//     ≤10 relations with a t=9 budget essentially always land close;
//     the wide bound is there to catch catastrophic regressions — a
//     broken neighbor function, a mis-wired estimator — not to assert
//     convergence luck).
//
// The oracle comparison requires the static estimator on both sides:
// dp.Optimal is exact only when selectivities are order-independent.
// Strategy plans are re-priced under the oracle's own evaluator so
// both costs come from the identical cost function.
func TestDifferentialOracle(t *testing.T) {
	shapes := []struct {
		name  string
		shape workload.Shape
	}{
		{"chain", workload.ShapeChain},
		{"star", workload.ShapeStar},
		{"cycle", workload.ShapeCycle},
		{"grid", workload.ShapeGrid},
	}
	const (
		sanityRatio = 100.0 // catastrophic-regression guard, not a convergence assertion
		slack       = 1e-9  // float re-pricing tolerance on the ≥-optimum side
	)
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			for _, n := range []int{4, 7, 9} {
				for _, seed := range []int64{1, 2, 3} {
					q, err := workload.Default().GenerateShape(sh.shape, n, rand.New(rand.NewSource(seed)))
					if err != nil {
						t.Fatalf("n=%d seed=%d: generate: %v", n, seed, err)
					}

					// Oracle side: exact left-deep optimum under the
					// static estimator.
					oracleOpt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), cost.Unlimited(),
						rand.New(rand.NewSource(seed)), Options{StaticEstimator: true})
					if err != nil {
						t.Fatal(err)
					}
					comps := oracleOpt.graph.Components()
					if len(comps) != 1 {
						t.Fatalf("n=%d seed=%d: shape query disconnected (%d components)", n, seed, len(comps))
					}
					optPerm, optCost, err := dp.Optimal(oracleOpt.eval, comps[0])
					if err != nil {
						t.Fatalf("n=%d seed=%d: dp oracle: %v", n, seed, err)
					}
					if len(optPerm) != n || !isFinite(optCost) {
						t.Fatalf("n=%d seed=%d: degenerate oracle: perm=%d cost=%g", n, seed, len(optPerm), optCost)
					}

					for _, m := range Methods {
						budget := cost.NewBudget(cost.UnitsFor(9, n-1))
						strat, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget,
							rand.New(rand.NewSource(seed)), Options{StaticEstimator: true})
						if err != nil {
							t.Fatal(err)
						}
						pl, err := strat.Run(m)
						if err != nil {
							t.Errorf("%v n=%d seed=%d: run: %v", m, n, seed, err)
							continue
						}
						if pl == nil || pl.Degraded {
							t.Errorf("%v n=%d seed=%d: degraded plan (%s)", m, n, seed, pl.DegradeReason)
							continue
						}
						order := pl.Order()
						if len(order) != n {
							t.Errorf("%v n=%d seed=%d: plan covers %d of %d relations", m, n, seed, len(order), n)
							continue
						}
						if !oracleOpt.eval.Valid(order) {
							t.Errorf("%v n=%d seed=%d: invalid order %v (cross product)", m, n, seed, order)
							continue
						}
						// Re-price under the oracle's evaluator so the
						// comparison uses one cost function.
						c := oracleOpt.eval.Cost(order)
						if !isFinite(c) {
							t.Errorf("%v n=%d seed=%d: non-finite cost %g", m, n, seed, c)
							continue
						}
						if c < optCost*(1-slack) {
							t.Errorf("%v n=%d seed=%d: plan cost %g undercuts exact optimum %g — inconsistent costing",
								m, n, seed, c, optCost)
						}
						if optCost > 0 && c > optCost*sanityRatio {
							t.Errorf("%v n=%d seed=%d: plan cost %g is %.1fx the optimum %g (sanity ratio %g)",
								m, n, seed, c, c/optCost, optCost, sanityRatio)
						}
					}
				}
			}
		})
	}
}

// TestDifferentialOracleRatiosTight complements the wide sanity bound
// with one aggregate check: across the whole grid above, the *median*
// strategy plan should be within 2x of the optimum. Individual unlucky
// (strategy, seed) cells may wander; half of them going bad at once
// means a real regression.
func TestDifferentialOracleRatiosTight(t *testing.T) {
	var ratios []float64
	for _, shape := range []workload.Shape{workload.ShapeChain, workload.ShapeStar, workload.ShapeCycle, workload.ShapeGrid} {
		for _, seed := range []int64{1, 2, 3} {
			n := 8
			q, err := workload.Default().GenerateShape(shape, n, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			oracleOpt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), cost.Unlimited(),
				rand.New(rand.NewSource(seed)), Options{StaticEstimator: true})
			if err != nil {
				t.Fatal(err)
			}
			_, optCost, err := dp.Optimal(oracleOpt.eval, oracleOpt.graph.Components()[0])
			if err != nil {
				t.Fatal(err)
			}
			if optCost <= 0 {
				continue
			}
			for _, m := range Methods {
				budget := cost.NewBudget(cost.UnitsFor(9, n-1))
				strat, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget,
					rand.New(rand.NewSource(seed)), Options{StaticEstimator: true})
				if err != nil {
					t.Fatal(err)
				}
				pl, err := strat.Run(m)
				if err != nil || pl == nil {
					t.Fatalf("%v: %v", m, err)
				}
				c := oracleOpt.eval.Cost(pl.Order())
				ratios = append(ratios, c/optCost)
			}
		}
	}
	if len(ratios) == 0 {
		t.Fatal("no ratios collected")
	}
	// Median without sort.Float64s churn: count how many are ≤ 2.
	within := 0
	worst := 0.0
	for _, r := range ratios {
		if r <= 2 {
			within++
		}
		if r > worst {
			worst = r
		}
	}
	if within*2 < len(ratios) {
		t.Fatalf("only %d/%d strategy plans within 2x of the exact optimum (worst %.2fx)", within, len(ratios), worst)
	}
	if math.IsInf(worst, 0) || math.IsNaN(worst) {
		t.Fatalf("non-finite worst ratio")
	}
}
