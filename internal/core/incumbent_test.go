package core

import (
	"context"
	"math/rand"
	"testing"

	"joinopt/internal/cost"
	"joinopt/internal/plan"
	"joinopt/internal/testutil"
)

// TestIncumbentWarmStart pins the warm-start contract the tiered
// serving layer relies on: with Options.Incumbent set and a budget too
// small for any search, the run returns the incumbent itself — valid,
// not degraded — because the incumbent is offered to the tracker
// before any strategy runs.
func TestIncumbentWarmStart(t *testing.T) {
	q := testutil.BenchQuery(10, 7)

	// First find any good complete order with a real run.
	opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), cost.NewBudget(cost.UnitsFor(9, 10)), rand.New(rand.NewSource(1)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := opt.RunContext(context.Background(), II)
	if err != nil || ref.Degraded {
		t.Fatalf("reference run failed: err=%v degraded=%v", err, ref.Degraded)
	}
	incumbent := ref.Order().Clone()

	// Re-run with a starved budget: without a warm start this is a
	// degraded fallback plan; with one, the incumbent must survive.
	opt2, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), cost.NewBudget(1), rand.New(rand.NewSource(1)), Options{Incumbent: incumbent})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := opt2.RunContext(context.Background(), II)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Degraded {
		t.Fatalf("warm-started run degraded: %s", pl.DegradeReason)
	}
	got := pl.Order()
	if len(got) != len(incumbent) {
		t.Fatalf("plan order %v does not match incumbent %v", got, incumbent)
	}
	for i := range incumbent {
		if got[i] != incumbent[i] {
			t.Fatalf("plan order %v diverged from incumbent %v at %d", got, incumbent, i)
		}
	}

	// A plentiful run with the incumbent must never end worse than it.
	opt3, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), cost.NewBudget(cost.UnitsFor(9, 10)), rand.New(rand.NewSource(2)), Options{Incumbent: incumbent})
	if err != nil {
		t.Fatal(err)
	}
	pl3, err := opt3.RunContext(context.Background(), II)
	if err != nil {
		t.Fatal(err)
	}
	incCost := opt3.Evaluator().Cost(incumbent)
	if pl3.TotalCost > incCost*(1+1e-9) {
		t.Fatalf("warm-started search ended at %g, worse than its incumbent %g", pl3.TotalCost, incCost)
	}
}

// TestIncumbentInvalidIgnored: a nonsense incumbent (wrong relations,
// duplicates) must be ignored, not crash the run or corrupt the plan.
func TestIncumbentInvalidIgnored(t *testing.T) {
	q := testutil.BenchQuery(8, 3)
	bad := plan.Perm{0, 0, 99, 3}
	opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), cost.NewBudget(cost.UnitsFor(9, 8)), rand.New(rand.NewSource(1)), Options{Incumbent: bad})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := opt.RunContext(context.Background(), II)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, opt, pl, 9, "invalid incumbent")
	if pl.Degraded {
		t.Fatalf("run with ignored incumbent degraded: %s", pl.DegradeReason)
	}
}
