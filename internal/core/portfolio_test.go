package core

import (
	"math"
	"testing"

	"joinopt/internal/cost"
	"joinopt/internal/testutil"
)

func TestPortfolioPicksBestMember(t *testing.T) {
	q := testutil.BenchQuery(15, 51)
	total := cost.UnitsFor(9, 15) * 3
	best, results, err := Portfolio(q, cost.NewMemoryModel(), total, 7, Options{},
		IAI, AGI, SA)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	min := math.Inf(1)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%v: %v", r.Method, r.Err)
		}
		if len(r.Plan.Order()) != 16 {
			t.Fatalf("%v: incomplete plan", r.Method)
		}
		if r.Plan.TotalCost < min {
			min = r.Plan.TotalCost
		}
		// Each member respects its budget slice.
		slack := int64(16*4) + 16*16
		if r.Units > total/3+slack {
			t.Fatalf("%v overshot its slice: %d of %d", r.Method, r.Units, total/3)
		}
	}
	if best.TotalCost != min {
		t.Fatalf("portfolio returned %g, member min is %g", best.TotalCost, min)
	}
}

func TestPortfolioDeterministic(t *testing.T) {
	q := testutil.BenchQuery(12, 53)
	run := func() float64 {
		best, _, err := Portfolio(q.Clone(), cost.NewMemoryModel(), cost.UnitsFor(3, 12)*2, 5, Options{}, IAI, II)
		if err != nil {
			t.Fatal(err)
		}
		return best.TotalCost
	}
	if run() != run() {
		t.Fatal("portfolio not deterministic per seed")
	}
}

func TestPortfolioErrors(t *testing.T) {
	q := testutil.BenchQuery(5, 55)
	if _, _, err := Portfolio(q, cost.NewMemoryModel(), 1000, 1, Options{}); err == nil {
		t.Fatal("empty portfolio accepted")
	}
	bad := testutil.BenchQuery(5, 57)
	bad.Relations[0].Cardinality = -1
	if _, _, err := Portfolio(bad, cost.NewMemoryModel(), 1000, 1, Options{}, IAI); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestPWIsWorstButValid(t *testing.T) {
	q := testutil.BenchQuery(15, 59)
	run := func(m Method) float64 {
		budget := cost.NewBudget(cost.UnitsFor(3, 15))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pl, err := opt.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Evaluator().Valid(pl.Order()) {
			t.Fatalf("%v produced an invalid plan", m)
		}
		return pl.TotalCost
	}
	pw := run(PW)
	iai := run(IAI)
	if pw < iai {
		t.Logf("note: PW (%g) beat IAI (%g) on this seed — rare but possible", pw, iai)
	}
	if m, err := ParseMethod("PW"); err != nil || m != PW {
		t.Fatal("PW not parseable")
	}
}
