// Package core implements the paper's primary contribution: the nine
// join-order optimization strategies of §4.4 that combine the
// augmentation, KBZ and local-improvement heuristics with iterative
// improvement and simulated annealing, all under a shared optimization
// budget.
package core

import "fmt"

// Method identifies one of the nine compared strategies.
type Method int

const (
	// II is plain iterative improvement from random start states.
	II Method = iota
	// SA is plain simulated annealing from a random start state.
	SA
	// SAA seeds simulated annealing with one augmentation state.
	SAA
	// SAK seeds simulated annealing with the KBZ state.
	SAK
	// IAI runs iterative improvement from augmentation start states,
	// then from random states.
	IAI
	// IKI runs iterative improvement from KBZ start states, then from
	// random states.
	IKI
	// IAL is IAI on the augmentation states followed by local
	// improvement of the best local minimum.
	IAL
	// AGI evaluates all augmentation states directly, then runs
	// iterative improvement from random states.
	AGI
	// KBI evaluates all KBZ states directly, then runs iterative
	// improvement from random states.
	KBI
	// AugOnly is the pure augmentation heuristic of §4.1: generate and
	// price the per-first-relation states, nothing more. Used by the
	// Table 1 criteria comparison; not one of the paper's nine combined
	// strategies.
	AugOnly
	// KBZOnly is the pure KBZ heuristic of §4.2: generate and price the
	// per-root orders, nothing more. Used by the Table 2 weight
	// comparison.
	KBZOnly
	// TPO is two-phase optimization: iterative improvement from a few
	// random starts, then low-temperature simulated annealing from the
	// best local minimum. This strategy postdates the paper (Ioannidis
	// & Kang, SIGMOD 1990) and is included as an extension — the paper's
	// §7 positions its framework as the bench for exactly such
	// candidate strategies.
	TPO
	// PW is the perturbation walk of [SG88] (the 1988 companion paper's
	// third technique): a pure random walk over valid states keeping
	// the best state seen, with no descent at all. It lost to both II
	// and SA there and serves here as the no-intelligence floor every
	// method must clear.
	PW
	// GA is a genetic algorithm over valid join orders (after Bennett,
	// Ferris & Ioannidis, SIGMOD 1991) — the third classical
	// metaheuristic family, included as an extension for comparison
	// within the paper's framework.
	GA
	// TS is tabu search (after Morzy, Matysiak & Salza 1993): steepest
	// sampled descent with a tabu list forbidding recent swaps, so it
	// escapes local minima deterministically. Extension.
	TS

	numMethods
)

// Methods lists all nine strategies in the paper's presentation order.
var Methods = []Method{II, SA, SAA, SAK, IAI, IKI, IAL, AGI, KBI}

// TopFive lists the five best methods the paper carries into Figures 5–7
// and Table 3.
var TopFive = []Method{IAI, IAL, AGI, KBI, II}

var methodNames = [numMethods]string{
	II: "II", SA: "SA", SAA: "SAA", SAK: "SAK", IAI: "IAI",
	IKI: "IKI", IAL: "IAL", AGI: "AGI", KBI: "KBI",
	AugOnly: "AUG", KBZOnly: "KBZ", TPO: "2PO", PW: "PW", GA: "GA", TS: "TS",
}

// String returns the paper's name for the method.
func (m Method) String() string {
	if m < 0 || m >= numMethods {
		return fmt.Sprintf("Method(%d)", int(m))
	}
	return methodNames[m]
}

// ParseMethod resolves a method by its paper name (case-sensitive).
func ParseMethod(s string) (Method, error) {
	for i, n := range methodNames {
		if n == s {
			return Method(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown method %q", s)
}
