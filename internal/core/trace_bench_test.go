package core

import (
	"math/rand"
	"testing"

	"joinopt/internal/cost"
	"joinopt/internal/telemetry"
	"joinopt/internal/testutil"
)

// benchRun executes one fully budgeted IAI optimization with the given
// tracer. The budget, not the tracer, bounds the work, so the two
// benchmarks below do identical search; the delta is pure
// instrumentation overhead.
func benchRun(b *testing.B, tr *telemetry.Tracer) {
	b.Helper()
	q := testutil.BenchQuery(20, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		budget := cost.NewBudget(cost.UnitsFor(2, 20))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget,
			rand.New(rand.NewSource(1)), Options{Trace: tr})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.Run(IAI); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunNilTracer is the zero-overhead baseline: the emission
// sites compile to one nil pointer check each. Compare against
// BenchmarkRunActiveTracer to price the instrumentation itself.
func BenchmarkRunNilTracer(b *testing.B) { benchRun(b, nil) }

// BenchmarkRunActiveTracer prices full move-level tracing (ring
// append under a mutex per event).
func BenchmarkRunActiveTracer(b *testing.B) {
	benchRun(b, telemetry.NewTracer(telemetry.DefaultTraceCapacity))
}
