package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/plan"
	"joinopt/internal/testutil"
)

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range Methods {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: %v %v", m, got, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Fatal("bogus method parsed")
	}
	if Method(99).String() != "Method(99)" {
		t.Fatal("out-of-range String")
	}
}

func TestAllMethodsProduceValidPlans(t *testing.T) {
	q := testutil.BenchQuery(12, 7)
	all := append([]Method{}, Methods...)
	all = append(all, AugOnly, KBZOnly)
	for _, m := range all {
		budget := cost.NewBudget(cost.UnitsFor(3, 12))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(1)), Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		pl, err := opt.Run(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		order := pl.Order()
		if len(order) != 13 {
			t.Fatalf("%v: plan covers %d of 13 relations", m, len(order))
		}
		seen := map[catalog.RelID]bool{}
		for _, r := range order {
			if seen[r] {
				t.Fatalf("%v: duplicate relation %d", m, r)
			}
			seen[r] = true
		}
		if !opt.Evaluator().Valid(order) {
			t.Fatalf("%v: invalid plan %v", m, order)
		}
		if pl.TotalCost <= 0 || math.IsInf(pl.TotalCost, 0) || math.IsNaN(pl.TotalCost) {
			t.Fatalf("%v: degenerate cost %g", m, pl.TotalCost)
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	q := testutil.BenchQuery(20, 11)
	for _, m := range Methods {
		limit := cost.UnitsFor(1, 20)
		budget := cost.NewBudget(limit)
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(2)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := opt.Run(m); err != nil {
			t.Fatal(err)
		}
		// Exhaustion is checked between operations, so a method may
		// overshoot by at most one state's worth of work.
		slack := int64(21*plan.EvalUnitsPerJoin) + 21*21
		if budget.Used() > limit+slack {
			t.Fatalf("%v: used %d of %d (+%d slack)", m, budget.Used(), limit, slack)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	q := testutil.BenchQuery(15, 13)
	run := func(seed int64) float64 {
		budget := cost.NewBudget(cost.UnitsFor(2, 15))
		opt, _ := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(seed)), Options{})
		pl, _ := opt.Run(IAI)
		return pl.TotalCost
	}
	if run(5) != run(5) {
		t.Fatal("same seed produced different results")
	}
}

func TestOnImproveMonotone(t *testing.T) {
	q := testutil.BenchQuery(15, 17)
	last := math.Inf(1)
	lastUsed := int64(-1)
	opts := Options{OnImprove: func(c float64, used int64) {
		if c >= last {
			t.Fatalf("OnImprove cost not descending: %g after %g", c, last)
		}
		if used < lastUsed {
			t.Fatalf("OnImprove used not ascending: %d after %d", used, lastUsed)
		}
		last, lastUsed = c, used
	}}
	budget := cost.NewBudget(cost.UnitsFor(3, 15))
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, rand.New(rand.NewSource(3)), opts)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := opt.Run(IAI)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(last, 1) {
		t.Fatal("OnImprove never fired")
	}
	if math.Abs(pl.TotalCost-last) > last*1e-9 {
		t.Fatalf("final plan %g does not match last reported %g", pl.TotalCost, last)
	}
}

func TestDisconnectedQueryCrossProducts(t *testing.T) {
	// Two independent chains: {0,1,2} and {3,4}.
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 50}, {Cardinality: 60}, {Cardinality: 70},
			{Cardinality: 800}, {Cardinality: 900},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 10, RightDistinct: 10},
			{Left: 1, Right: 2, LeftDistinct: 10, RightDistinct: 10},
			{Left: 3, Right: 4, LeftDistinct: 10, RightDistinct: 10},
		},
	}
	budget := cost.NewBudget(cost.UnitsFor(9, 4))
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, rand.New(rand.NewSource(4)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := opt.Run(IAI)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Components) != 2 {
		t.Fatalf("expected 2 components, got %d", len(pl.Components))
	}
	if pl.CrossCost <= 0 {
		t.Fatal("cross products not priced")
	}
	if len(pl.Order()) != 5 {
		t.Fatalf("plan covers %d of 5 relations", len(pl.Order()))
	}
}

func TestNilAndInvalidQueries(t *testing.T) {
	if _, err := NewOptimizer(nil, cost.NewMemoryModel(), cost.Unlimited(), nil, Options{}); err == nil {
		t.Fatal("nil query accepted")
	}
	bad := &catalog.Query{Relations: []catalog.Relation{{Cardinality: -1}}}
	if _, err := NewOptimizer(bad, cost.NewMemoryModel(), cost.Unlimited(), nil, Options{}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestUnknownMethod(t *testing.T) {
	q := testutil.BenchQuery(5, 1)
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), cost.NewBudget(1000), rand.New(rand.NewSource(1)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := opt.Run(Method(99))
	if err != nil {
		t.Fatal(err)
	}
	// An unknown method yields the fallback random valid state.
	if len(pl.Order()) != 6 {
		t.Fatalf("fallback plan covers %d relations", len(pl.Order()))
	}
}

// TestIAINeverWorseThanPureAugmentation: with a budget ample enough to
// visit every augmentation start state, IAI's incumbent can only improve
// on the best pure-augmentation state (IAI offers each start before
// descending). With tight budgets the paper's opposite dynamic appears —
// IAI gets stuck descending and misses later augmentation states — so
// the ample budget here is the point of the test, not a convenience.
func TestIAINeverWorseThanPureAugmentation(t *testing.T) {
	f := func(seed int64) bool {
		q := testutil.BenchQuery(10, seed)
		run := func(m Method, tcoeff float64) float64 {
			budget := cost.NewBudget(cost.UnitsFor(tcoeff, 10))
			opt, _ := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(1)), Options{})
			pl, _ := opt.Run(m)
			return pl.TotalCost
		}
		return run(IAI, 200) <= run(AugOnly, 9)*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticEstimatorOption(t *testing.T) {
	q := testutil.BenchQuery(10, 23)
	budget := cost.Unlimited()
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, nil, Options{StaticEstimator: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Evaluator().Stats().Dynamic() {
		t.Fatal("StaticEstimator option ignored")
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.Criterion == 0 || o.Weight == 0 {
		t.Fatal("defaults not filled")
	}
	if o.IIConfig.RejectFactor == 0 || o.SAConfig.SizeFactor == 0 {
		t.Fatal("search configs not filled")
	}
}

func TestTPOExtension(t *testing.T) {
	q := testutil.BenchQuery(15, 29)
	budget := cost.NewBudget(cost.UnitsFor(3, 15))
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, rand.New(rand.NewSource(5)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := opt.Run(TPO)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Order()) != 16 || !opt.Evaluator().Valid(pl.Order()) {
		t.Fatal("2PO produced an invalid plan")
	}
	if m, err := ParseMethod("2PO"); err != nil || m != TPO {
		t.Fatalf("2PO not parseable: %v %v", m, err)
	}
}

// TestTPONotWorseThanSA: 2PO's first phase is plain II, so with the
// same budget it should rarely lose to raw SA; sanity-check one seed.
func TestTPONotWorseThanSA(t *testing.T) {
	q := testutil.BenchQuery(20, 31)
	run := func(m Method) float64 {
		budget := cost.NewBudget(cost.UnitsFor(6, 20))
		opt, _ := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(7)), Options{})
		pl, _ := opt.Run(m)
		return pl.TotalCost
	}
	if run(TPO) > run(SA)*1.5 {
		t.Fatal("2PO lost badly to SA — phase structure broken")
	}
}

// TestStrategyDominance checks the containment relations between the
// composite strategies and their pure-heuristic ingredients: with ample
// budget, a strategy that offers every heuristic state plus search can
// never end worse than the pure heuristic.
func TestStrategyDominance(t *testing.T) {
	q := testutil.BenchQuery(12, 67)
	run := func(m Method, tcoeff float64) float64 {
		budget := cost.NewBudget(cost.UnitsFor(tcoeff, 12))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(9)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		pl, err := opt.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		return pl.TotalCost
	}
	aug := run(AugOnly, 9)
	kbz := run(KBZOnly, 9)
	eps := 1 + 1e-9
	if agi := run(AGI, 100); agi > aug*eps {
		t.Fatalf("AGI (%g) worse than pure augmentation (%g)", agi, aug)
	}
	if ial := run(IAL, 100); ial > aug*eps {
		t.Fatalf("IAL (%g) worse than pure augmentation (%g)", ial, aug)
	}
	if kbi := run(KBI, 100); kbi > kbz*eps {
		t.Fatalf("KBI (%g) worse than pure KBZ (%g)", kbi, kbz)
	}
	if sak := run(SAK, 100); sak > kbz*eps {
		t.Fatalf("SAK (%g) worse than pure KBZ (%g)", sak, kbz)
	}
	if iki := run(IKI, 100); iki > kbz*eps {
		t.Fatalf("IKI (%g) worse than pure KBZ (%g)", iki, kbz)
	}
}

// TestGAMethodThroughOptimizer exercises GA via the strategy dispatch.
func TestGAMethodThroughOptimizer(t *testing.T) {
	q := testutil.BenchQuery(14, 69)
	budget := cost.NewBudget(cost.UnitsFor(3, 14))
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, rand.New(rand.NewSource(5)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := opt.Run(GA)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Evaluator().Valid(pl.Order()) {
		t.Fatal("GA plan invalid")
	}
	if m, err := ParseMethod("GA"); err != nil || m != GA {
		t.Fatal("GA not parseable")
	}
}

// TestInsertMoveProbOption: the ablation knob must change behavior
// (same seed, different move sets → almost surely different outcomes on
// a tight budget) while keeping plans valid.
func TestInsertMoveProbOption(t *testing.T) {
	q := testutil.BenchQuery(20, 73)
	run := func(p float64) float64 {
		budget := cost.NewBudget(cost.UnitsFor(1, 20))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(3)), Options{InsertMoveProb: p})
		if err != nil {
			t.Fatal(err)
		}
		pl, err := opt.Run(II)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Evaluator().Valid(pl.Order()) {
			t.Fatal("invalid plan")
		}
		return pl.TotalCost
	}
	a := run(0)
	b := run(0.9)
	if a == b {
		t.Log("note: identical outcomes with and without insert moves (possible but unlikely)")
	}
}

// TestIALRunsLocalImprovementPhase gives IAL a budget sized so the
// augmentation phase completes and the local-improvement ladder has
// room to run, covering the (c,o) selection and improvement loop.
func TestIALRunsLocalImprovementPhase(t *testing.T) {
	q := testutil.BenchQuery(10, 81)
	for _, tcoeff := range []float64{0.5, 3, 30} {
		budget := cost.NewBudget(cost.UnitsFor(tcoeff, 10))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(7)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		pl, err := opt.Run(IAL)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Evaluator().Valid(pl.Order()) {
			t.Fatalf("t=%g: invalid IAL plan", tcoeff)
		}
	}
}

// TestPWWithRestartsAndTinySpace covers PW's no-neighbor restart branch
// (a 2-relation component where many proposals can fail) and its
// steady-state walk.
func TestPWWithRestartsAndTinySpace(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 10}, {Cardinality: 20},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 5, RightDistinct: 5},
		},
	}
	budget := cost.NewBudget(500)
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, rand.New(rand.NewSource(3)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := opt.Run(PW)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Order()) != 2 {
		t.Fatal("incomplete PW plan")
	}
}
