package core

import (
	"math/rand"
	"strings"
	"testing"

	"joinopt/internal/cost"
	"joinopt/internal/telemetry"
	"joinopt/internal/testutil"
)

// TestGoldenDeterminism is the strong form of the repeatability claim
// the detrand analyzer enforces statically: running each of the nine
// strategies twice with the same seed must reproduce not just the same
// final cost but the *identical trajectory* — byte-identical Explain
// output and the exact same number of budget units consumed. A single
// stray map-iteration, wall-clock read, or global-rand draw anywhere in
// the search path shows up here as a diff in one of the two.
func TestGoldenDeterminism(t *testing.T) {
	q := testutil.BenchQuery(15, 29)

	type outcome struct {
		explain string
		used    int64
		cost    float64
	}
	run := func(m Method, seed int64) outcome {
		budget := cost.NewBudget(cost.UnitsFor(2, 15))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget,
			rand.New(rand.NewSource(seed)), Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		pl, err := opt.Run(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return outcome{
			explain: pl.Explain(q),
			used:    budget.Used(),
			cost:    pl.TotalCost,
		}
	}

	for _, m := range Methods {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			a := run(m, 41)
			b := run(m, 41)
			if a.explain != b.explain {
				t.Errorf("Explain output differs across identical seeded runs:\nfirst:\n%s\nsecond:\n%s", a.explain, b.explain)
			}
			if a.used != b.used {
				t.Errorf("budget Used() differs across identical seeded runs: %d vs %d", a.used, b.used)
			}
			if a.cost != b.cost {
				t.Errorf("total cost differs across identical seeded runs: %g vs %g", a.cost, b.cost)
			}
			if a.used <= 0 {
				t.Errorf("suspicious zero budget usage for %v", m)
			}
		})
	}
}

// TestGoldenDeterminismDetailed repeats the check against the
// per-join ExplainDetailed rendering for a representative subset (one
// heuristic-seeded, one annealing, one pure-descent strategy), which
// additionally covers the method-chooser and size-estimation paths.
func TestGoldenDeterminismDetailed(t *testing.T) {
	q := testutil.BenchQuery(12, 31)
	run := func(m Method) (string, int64) {
		budget := cost.NewBudget(cost.UnitsFor(2, 12))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget,
			rand.New(rand.NewSource(7)), Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		pl, err := opt.Run(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return pl.ExplainDetailed(opt.Evaluator(), q), budget.Used()
	}
	for _, m := range []Method{IAI, SA, II} {
		ex1, used1 := run(m)
		ex2, used2 := run(m)
		if ex1 != ex2 {
			t.Errorf("%v: ExplainDetailed differs across identical seeded runs:\nfirst:\n%s\nsecond:\n%s", m, ex1, ex2)
		}
		if used1 != used2 {
			t.Errorf("%v: budget Used() differs: %d vs %d", m, used1, used2)
		}
	}
}

// TestTraceDeterminism is the observability layer's own repeatability
// contract: running the same (query, seed, budget, strategy) twice with
// a tracer attached must produce byte-identical WriteText dumps and
// identical per-kind event counts. Because every event is stamped with
// Budget.Used() work units instead of wall-clock time, any divergence
// here means real nondeterminism in the search path — not jitter.
func TestTraceDeterminism(t *testing.T) {
	q := testutil.BenchQuery(14, 43)

	run := func(m Method, seed int64) (string, [telemetry.NumEventKinds]uint64) {
		tr := telemetry.NewTracer(1 << 14)
		// t=6 rather than the cheaper t=2 of the golden tests: the GA
		// spends ~t=2's whole budget pricing its initial population and
		// would emit no offspring proposals at all.
		budget := cost.NewBudget(cost.UnitsFor(6, 14))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget,
			rand.New(rand.NewSource(seed)), Options{Trace: tr})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if _, err := opt.Run(m); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var buf strings.Builder
		if err := tr.WriteText(&buf); err != nil {
			t.Fatalf("%v: WriteText: %v", m, err)
		}
		return buf.String(), tr.Counts()
	}

	for _, m := range []Method{II, SA, IAI, AGI, TS, GA} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			dump1, counts1 := run(m, 61)
			dump2, counts2 := run(m, 61)
			if dump1 != dump2 {
				t.Errorf("trace dumps differ across identical seeded runs:\n--- first\n%.2000s\n--- second\n%.2000s", dump1, dump2)
			}
			if counts1 != counts2 {
				t.Errorf("event counts differ across identical seeded runs: %v vs %v", counts1, counts2)
			}
			if counts1[telemetry.EvMoveProposed] == 0 {
				t.Errorf("%v emitted no move-proposed events; wiring is dead", m)
			}
			if counts1[telemetry.EvStrategyStart] == 0 || counts1[telemetry.EvStrategyEnd] == 0 {
				t.Errorf("%v missing strategy start/end events", m)
			}
			if counts1[telemetry.EvImprove] == 0 {
				t.Errorf("%v reported no incumbent improvements on a 14-relation query", m)
			}
		})
	}
}

// TestTraceNilIsZeroCost pins the nil-tracer contract at the Options
// level: a run with Trace=nil must behave identically (same plan, same
// units) to the pre-telemetry behavior — the emission sites are all
// behind nil checks and must not perturb the trajectory.
func TestTraceNilIsZeroCost(t *testing.T) {
	q := testutil.BenchQuery(12, 47)
	run := func(tr *telemetry.Tracer) (float64, int64) {
		budget := cost.NewBudget(cost.UnitsFor(2, 12))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget,
			rand.New(rand.NewSource(3)), Options{Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		pl, err := opt.Run(IAI)
		if err != nil {
			t.Fatal(err)
		}
		return pl.TotalCost, budget.Used()
	}
	cNil, uNil := run(nil)
	cTr, uTr := run(telemetry.NewTracer(0))
	if cNil != cTr || uNil != uTr {
		t.Fatalf("tracing perturbed the trajectory: cost %g vs %g, units %d vs %d", cNil, cTr, uNil, uTr)
	}
}
