package core

import (
	"math/rand"
	"testing"

	"joinopt/internal/cost"
)

// TestGoldenDeterminism is the strong form of the repeatability claim
// the detrand analyzer enforces statically: running each of the nine
// strategies twice with the same seed must reproduce not just the same
// final cost but the *identical trajectory* — byte-identical Explain
// output and the exact same number of budget units consumed. A single
// stray map-iteration, wall-clock read, or global-rand draw anywhere in
// the search path shows up here as a diff in one of the two.
func TestGoldenDeterminism(t *testing.T) {
	q := benchQuery(15, 29)

	type outcome struct {
		explain string
		used    int64
		cost    float64
	}
	run := func(m Method, seed int64) outcome {
		budget := cost.NewBudget(cost.UnitsFor(2, 15))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget,
			rand.New(rand.NewSource(seed)), Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		pl, err := opt.Run(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return outcome{
			explain: pl.Explain(q),
			used:    budget.Used(),
			cost:    pl.TotalCost,
		}
	}

	for _, m := range Methods {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			a := run(m, 41)
			b := run(m, 41)
			if a.explain != b.explain {
				t.Errorf("Explain output differs across identical seeded runs:\nfirst:\n%s\nsecond:\n%s", a.explain, b.explain)
			}
			if a.used != b.used {
				t.Errorf("budget Used() differs across identical seeded runs: %d vs %d", a.used, b.used)
			}
			if a.cost != b.cost {
				t.Errorf("total cost differs across identical seeded runs: %g vs %g", a.cost, b.cost)
			}
			if a.used <= 0 {
				t.Errorf("suspicious zero budget usage for %v", m)
			}
		})
	}
}

// TestGoldenDeterminismDetailed repeats the check against the
// per-join ExplainDetailed rendering for a representative subset (one
// heuristic-seeded, one annealing, one pure-descent strategy), which
// additionally covers the method-chooser and size-estimation paths.
func TestGoldenDeterminismDetailed(t *testing.T) {
	q := benchQuery(12, 31)
	run := func(m Method) (string, int64) {
		budget := cost.NewBudget(cost.UnitsFor(2, 12))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget,
			rand.New(rand.NewSource(7)), Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		pl, err := opt.Run(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return pl.ExplainDetailed(opt.Evaluator(), q), budget.Used()
	}
	for _, m := range []Method{IAI, SA, II} {
		ex1, used1 := run(m)
		ex2, used2 := run(m)
		if ex1 != ex2 {
			t.Errorf("%v: ExplainDetailed differs across identical seeded runs:\nfirst:\n%s\nsecond:\n%s", m, ex1, ex2)
		}
		if used1 != used2 {
			t.Errorf("%v: budget Used() differs: %d vs %d", m, used1, used2)
		}
	}
}
