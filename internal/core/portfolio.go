package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/plan"
	"joinopt/internal/telemetry"
)

// PortfolioResult is the outcome of one portfolio member.
type PortfolioResult struct {
	Method Method
	// Plan is the member's plan. Per the anytime contract it is non-nil
	// even when the member panicked or was cancelled (check
	// Plan.Degraded); it is nil only if the member's optimizer could not
	// be constructed at all.
	Plan *plan.Plan
	// Units is the budget the member consumed.
	Units int64
	// Err records what went wrong, if anything: a construction error, or
	// a *PanicError when the member's strategy crashed (the degraded
	// plan accompanies it).
	Err error
}

// PortfolioConfig tunes a portfolio run.
type PortfolioConfig struct {
	// TotalUnits is the work-unit budget split evenly across members
	// (each member's share is clamped to at least 1 unit — an integer
	// share of 0 would otherwise mean *unlimited*). ≤ 0 means each
	// member gets an unlimited budget (only sensible for the finite
	// heuristics AUG/KBZ).
	TotalUnits int64
	// Seed derives each member's independent RNG stream.
	Seed int64
	// Opts is applied to every member (OnImprove and Trace are stripped:
	// per-member trajectories are not merged, and a tracer shared by
	// concurrent members would interleave non-deterministically, breaking
	// the byte-identical-trace guarantee). Member-level start/end events
	// are instead emitted on Trace at deterministic points — all starts
	// before the members spawn and all ends after they join, both in
	// member index order, each end stamped with that member's own
	// consumed units.
	Opts Options
	// Trace, if non-nil, receives the portfolio-level strategy
	// start/end events described on Opts.
	Trace *telemetry.Tracer
	// HedgeCost, when > 0, enables hedging: as soon as any member
	// finishes with a non-degraded plan whose TotalCost is ≤ HedgeCost,
	// the remaining members are cancelled. Their results are recorded as
	// degraded plans per the anytime contract. Use it when any plan
	// under an acceptability threshold is good enough and freeing the
	// cores beats squeezing out the last few percent.
	HedgeCost float64
	// MemberHook, if non-nil, is called with each member's optimizer
	// after construction and before the run. Fault-injection harnesses
	// use it to install fault plans or pre-cancel budgets on specific
	// members; production callers leave it nil.
	MemberHook func(index int, m Method, o *Optimizer)
}

// Portfolio runs several strategies concurrently on the same query,
// each in its own goroutine with its own optimizer, statistics and an
// equal slice of the total budget, and returns the cheapest plan along
// with every member's outcome.
//
// The paper's finding is that no single method dominates at every
// budget (AGI small, IAI large); a portfolio hedges that choice at the
// price of splitting the budget. On a multicore machine the members
// run in parallel, so wall-clock time matches a single member's.
//
// totalUnits ≤ 0 means each member gets an unlimited budget (only
// sensible for the finite heuristics AUG/KBZ).
//
// Portfolio is PortfolioContext with a background context and no
// hedging.
func Portfolio(q *catalog.Query, model cost.Model, totalUnits int64, seed int64, opts Options, methods ...Method) (*plan.Plan, []PortfolioResult, error) {
	//ljqlint:allow ctxflow -- public no-context compatibility wrapper: documented as PortfolioContext with a fresh background chain; callers wanting cancellation use PortfolioContext
	return PortfolioContext(context.Background(), q, model,
		PortfolioConfig{TotalUnits: totalUnits, Seed: seed, Opts: opts}, methods...)
}

// PortfolioContext is Portfolio under a context, with crash isolation
// and optional hedging:
//
//   - Cancelling ctx cancels every member's budget; each member still
//     returns a valid (degraded) plan per the RunContext contract.
//   - Each member runs behind a panic barrier. A member that panics
//     outside the optimizer's own recovery is recorded as
//     PortfolioResult.Err while the other members finish undisturbed; a
//     panic inside a strategy phase additionally carries the member's
//     salvaged degraded plan.
//   - With cfg.HedgeCost > 0, the first member to produce an acceptable
//     plan cancels the rest (see PortfolioConfig.HedgeCost).
//
// Selection prefers the cheapest non-degraded finite plan; if every
// member degraded, the cheapest degraded plan is returned (still valid,
// still executable) together with the first member error observed. The
// error is non-nil with a nil plan only if no member produced any plan.
func PortfolioContext(ctx context.Context, q *catalog.Query, model cost.Model, cfg PortfolioConfig, methods ...Method) (*plan.Plan, []PortfolioResult, error) {
	if len(methods) == 0 {
		return nil, nil, errors.New("core: portfolio needs at least one method")
	}
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Satellite fix: an integer share of 0 (totalUnits < len(methods))
	// used to flow into cost.NewBudget(0) == unlimited, silently turning
	// a *small* budget into an *infinite* one per member. Clamp to ≥ 1.
	share := int64(0)
	if cfg.TotalUnits > 0 {
		share = cfg.TotalUnits / int64(len(methods))
		if share < 1 {
			share = 1
		}
	}

	runCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	if tr := cfg.Trace; tr != nil {
		for _, m := range methods {
			tr.Emit(telemetry.EvStrategyStart, 0, "portfolio:"+m.String())
		}
	}

	results := make([]PortfolioResult, len(methods))
	var wg sync.WaitGroup
	for i, m := range methods {
		wg.Add(1)
		go func(i int, m Method) {
			defer wg.Done()
			// Outer panic barrier: a crash anywhere in the member
			// (construction, assembly, a bug outside the optimizer's own
			// phase recovery) must not take down the portfolio.
			defer func() {
				if r := recover(); r != nil {
					results[i] = PortfolioResult{
						Method: m,
						Err:    &PanicError{Method: m, Value: r},
					}
				}
			}()
			var budget *cost.Budget
			if share > 0 {
				budget = cost.NewBudget(share)
			} else {
				budget = cost.Unlimited()
			}
			// Each member gets its own clone (NewOptimizer normalizes in
			// place) and an independent RNG stream.
			rng := rand.New(rand.NewSource(cfg.Seed ^ (int64(i)+1)*0x517cc1b727220a95))
			memberOpts := cfg.Opts
			memberOpts.OnImprove = nil // per-member trajectories are not merged
			memberOpts.Trace = nil     // see PortfolioConfig.Opts: members must not share a tracer
			o, err := NewOptimizer(q.Clone(), model, budget, rng, memberOpts)
			if err != nil {
				results[i] = PortfolioResult{Method: m, Err: err}
				return
			}
			if cfg.MemberHook != nil {
				cfg.MemberHook(i, m, o)
			}
			pl, err := o.RunContext(runCtx, m)
			results[i] = PortfolioResult{Method: m, Plan: pl, Units: budget.Used(), Err: err}
			if cfg.HedgeCost > 0 && pl != nil && !pl.Degraded && pl.TotalCost <= cfg.HedgeCost {
				// Acceptable plan in hand: stop paying for the others.
				cancelAll()
			}
		}(i, m)
	}
	wg.Wait()

	if tr := cfg.Trace; tr != nil {
		for i, r := range results {
			c := math.Inf(1)
			if r.Plan != nil {
				c = r.Plan.TotalCost
			}
			tr.EmitCost(telemetry.EvStrategyEnd, r.Units, c, "portfolio:"+methods[i].String())
		}
	}

	pick := func(includeDegraded bool) (int, float64) {
		best, bestCost := -1, math.Inf(1)
		for i, r := range results {
			if r.Plan == nil {
				continue
			}
			if r.Plan.Degraded && !includeDegraded {
				continue
			}
			if best < 0 || r.Plan.TotalCost < bestCost {
				best, bestCost = i, r.Plan.TotalCost
			}
		}
		return best, bestCost
	}

	var firstErr error
	for _, r := range results {
		if r.Err != nil {
			firstErr = fmt.Errorf("core: portfolio member %v: %w", r.Method, r.Err)
			break
		}
	}

	if best, _ := pick(false); best >= 0 {
		// A clean member won: the portfolio as a whole succeeded even if
		// other members crashed or were cancelled (hedging cancels by
		// design). Member-level trouble stays visible in results.
		return results[best].Plan, results, nil
	}
	if best, _ := pick(true); best >= 0 {
		// Everything degraded; surface the best salvage plus what went
		// wrong.
		return results[best].Plan, results, firstErr
	}
	if firstErr == nil {
		firstErr = errors.New("core: portfolio produced no plan")
	}
	return nil, results, firstErr
}
