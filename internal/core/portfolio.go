package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/plan"
)

// PortfolioResult is the outcome of one portfolio member.
type PortfolioResult struct {
	Method Method
	Plan   *plan.Plan
	// Units is the budget the member consumed.
	Units int64
	Err   error
}

// Portfolio runs several strategies concurrently on the same query,
// each in its own goroutine with its own optimizer, statistics and an
// equal slice of the total budget, and returns the cheapest plan along
// with every member's outcome.
//
// The paper's finding is that no single method dominates at every
// budget (AGI small, IAI large); a portfolio hedges that choice at the
// price of splitting the budget. On a multicore machine the members
// run in parallel, so wall-clock time matches a single member's.
//
// totalUnits ≤ 0 means each member gets an unlimited budget (only
// sensible for the finite heuristics AUG/KBZ).
func Portfolio(q *catalog.Query, model cost.Model, totalUnits int64, seed int64, opts Options, methods ...Method) (*plan.Plan, []PortfolioResult, error) {
	if len(methods) == 0 {
		return nil, nil, errors.New("core: portfolio needs at least one method")
	}
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}

	results := make([]PortfolioResult, len(methods))
	var wg sync.WaitGroup
	for i, m := range methods {
		wg.Add(1)
		go func(i int, m Method) {
			defer wg.Done()
			var budget *cost.Budget
			if totalUnits > 0 {
				budget = cost.NewBudget(totalUnits / int64(len(methods)))
			} else {
				budget = cost.Unlimited()
			}
			// Each member gets its own clone (NewOptimizer normalizes in
			// place) and an independent RNG stream.
			rng := rand.New(rand.NewSource(seed ^ (int64(i)+1)*0x517cc1b727220a95))
			memberOpts := opts
			memberOpts.OnImprove = nil // per-member trajectories are not merged
			o, err := NewOptimizer(q.Clone(), model, budget, rng, memberOpts)
			if err != nil {
				results[i] = PortfolioResult{Method: m, Err: err}
				return
			}
			pl, err := o.Run(m)
			results[i] = PortfolioResult{Method: m, Plan: pl, Units: budget.Used(), Err: err}
		}(i, m)
	}
	wg.Wait()

	best := -1
	bestCost := math.Inf(1)
	var firstErr error
	for i, r := range results {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: portfolio member %v: %w", r.Method, r.Err)
			}
			continue
		}
		if r.Plan.TotalCost < bestCost {
			best, bestCost = i, r.Plan.TotalCost
		}
	}
	if best < 0 {
		return nil, results, firstErr
	}
	return results[best].Plan, results, nil
}
