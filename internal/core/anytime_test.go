package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"joinopt/internal/cost"
	"joinopt/internal/faultinject"
	"joinopt/internal/plan"
	"joinopt/internal/testutil"
)

// checkComplete asserts the plan covers all n relations exactly once
// and is a valid join order per the optimizer's evaluator.
func checkComplete(t *testing.T, opt *Optimizer, pl *plan.Plan, n int, label string) {
	t.Helper()
	if pl == nil {
		t.Fatalf("%s: nil plan", label)
	}
	order := pl.Order()
	if len(order) != n {
		t.Fatalf("%s: plan covers %d of %d relations", label, len(order), n)
	}
	seen := make(map[int]bool, n)
	for _, r := range order {
		if seen[int(r)] {
			t.Fatalf("%s: duplicate relation %d", label, r)
		}
		seen[int(r)] = true
	}
	if !opt.Evaluator().Valid(order) {
		t.Fatalf("%s: invalid join order %v", label, order)
	}
}

// TestRunContextImmediateCancellationAllNineStrategies is the anytime
// acceptance test: with the context already cancelled before RunContext
// is called, every one of the paper's nine strategies must still return
// a valid, complete plan, flagged degraded with the cancellation
// reason.
func TestRunContextImmediateCancellationAllNineStrategies(t *testing.T) {
	q := testutil.BenchQuery(12, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any strategy runs
	for _, m := range Methods {
		budget := cost.NewBudget(cost.UnitsFor(9, 12))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(1)), Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		pl, err := opt.RunContext(ctx, m)
		if err != nil {
			t.Fatalf("%v: RunContext returned error under cancellation: %v", m, err)
		}
		checkComplete(t, opt, pl, 13, m.String())
		if !pl.Degraded {
			t.Fatalf("%v: cancelled run not flagged degraded", m)
		}
		if pl.DegradeReason != plan.DegradeCancelled {
			t.Fatalf("%v: degrade reason %q, want %q", m, pl.DegradeReason, plan.DegradeCancelled)
		}
	}
}

// TestRunContextDeadlineStopsUnlimitedRun: II on an unlimited unit
// budget never stops on its own; the context deadline must stop it and
// the incumbent must come back flagged degraded.
func TestRunContextDeadlineStopsUnlimitedRun(t *testing.T) {
	q := testutil.BenchQuery(15, 11)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), cost.Unlimited(), rand.New(rand.NewSource(2)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var pl *plan.Plan
	go func() {
		pl, err = opt.RunContext(ctx, II)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("context deadline did not stop an unlimited II run")
	}
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, opt, pl, 16, "II")
	if !pl.Degraded || pl.DegradeReason != plan.DegradeCancelled {
		t.Fatalf("deadline-stopped run: Degraded=%v reason=%q", pl.Degraded, pl.DegradeReason)
	}
	if pl.TotalCost <= 0 || math.IsNaN(pl.TotalCost) || math.IsInf(pl.TotalCost, 0) {
		t.Fatalf("incumbent cost degenerate: %g", pl.TotalCost)
	}
}

// TestRunContextStarvedBudgetFallsBackDeterministically: a budget that
// is already exhausted on units (not cancelled) yields the
// augmentation-heuristic fallback, flagged starved, with a finite cost.
func TestRunContextStarvedBudgetFallsBack(t *testing.T) {
	q := testutil.BenchQuery(10, 13)
	budget := cost.NewBudget(1)
	budget.Charge(1) // exhausted before the run starts
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, rand.New(rand.NewSource(3)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := opt.RunContext(context.Background(), II)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, opt, pl, 11, "starved II")
	if !pl.Degraded || pl.DegradeReason != plan.DegradeStarved {
		t.Fatalf("starved run: Degraded=%v reason=%q", pl.Degraded, pl.DegradeReason)
	}
	if math.IsNaN(pl.TotalCost) || math.IsInf(pl.TotalCost, 0) {
		t.Fatalf("augmentation fallback cost not finite: %g", pl.TotalCost)
	}
}

// TestRunContextPanicIncumbentSurvives: a cost-evaluation panic
// injected mid-run must not lose the incumbent found before the crash.
// The plan is flagged degraded-panic and the recovered panic comes back
// as a *PanicError wrapping the injected *faultinject.Fault.
func TestRunContextPanicIncumbentSurvives(t *testing.T) {
	q := testutil.BenchQuery(12, 17)
	budget := cost.NewBudget(cost.UnitsFor(9, 12))
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, rand.New(rand.NewSource(5)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{PanicAt: 20})
	opt.Evaluator().SetFaultInjector(inj)
	pl, err := opt.RunContext(context.Background(), IAI)
	if err == nil {
		t.Fatal("recovered panic not reported")
	}
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("error %T, want *PanicError", err)
	}
	var fault *faultinject.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("injected fault not unwrappable from %v", err)
	}
	if fault.Kind != faultinject.PanicEval || fault.Eval != 20 {
		t.Fatalf("unexpected fault %+v", fault)
	}
	checkComplete(t, opt, pl, 13, "IAI-panic")
	if !pl.Degraded || !strings.HasPrefix(pl.DegradeReason, plan.DegradePanic) {
		t.Fatalf("panic run: Degraded=%v reason=%q", pl.Degraded, pl.DegradeReason)
	}
	// 19 evaluations completed before the crash, so a real incumbent
	// must have survived: finite cost, not the +Inf unknown marker.
	if math.IsInf(pl.TotalCost, 0) || math.IsNaN(pl.TotalCost) {
		t.Fatalf("incumbent lost to the panic: cost %g", pl.TotalCost)
	}
}

// TestRunContextEveryEvalPanicsStillReturnsPlan: the worst case — every
// single cost evaluation crashes — must still produce a complete valid
// plan (the deterministic augmentation fallback, priced +Inf because
// even pricing it crashes).
func TestRunContextEveryEvalPanicsStillReturnsPlan(t *testing.T) {
	q := testutil.BenchQuery(10, 19)
	for _, m := range Methods {
		budget := cost.NewBudget(cost.UnitsFor(3, 10))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(7)), Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		opt.Evaluator().SetFaultInjector(faultinject.New(faultinject.Config{PanicEvery: 1}))
		pl, _ := opt.RunContext(context.Background(), m)
		// Remove the injector so the validity check itself can run.
		opt.Evaluator().SetFaultInjector(nil)
		checkComplete(t, opt, pl, 11, m.String()+"-allpanic")
		if !pl.Degraded {
			t.Fatalf("%v: all-panic run not flagged degraded", m)
		}
	}
}

// TestRunContextNaNCostsDoNotPoison: with every evaluation reporting
// NaN, the optimizer must not return a NaN-poisoned incumbent as a
// healthy plan; the run degrades and the order stays valid.
func TestRunContextNaNCostsDoNotPoison(t *testing.T) {
	q := testutil.BenchQuery(10, 23)
	budget := cost.NewBudget(cost.UnitsFor(3, 10))
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, rand.New(rand.NewSource(9)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt.Evaluator().SetFaultInjector(faultinject.New(faultinject.Config{NaNEvery: 1}))
	pl, err := opt.RunContext(context.Background(), II)
	if err != nil {
		t.Fatal(err)
	}
	opt.Evaluator().SetFaultInjector(nil)
	checkComplete(t, opt, pl, 11, "II-nan")
	if !pl.Degraded {
		t.Fatal("NaN-flooded run not flagged degraded")
	}
	if math.IsNaN(pl.TotalCost) {
		t.Fatal("NaN leaked into the final plan cost")
	}
}

// TestRunContextIntermittentNaNRecovers: occasional NaN costs (a real
// estimator-overflow pattern) must not degrade the run at all — finite
// evaluations dominate and the incumbent is finite.
func TestRunContextIntermittentNaNRecovers(t *testing.T) {
	q := testutil.BenchQuery(12, 29)
	budget := cost.NewBudget(cost.UnitsFor(9, 12))
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, rand.New(rand.NewSource(11)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt.Evaluator().SetFaultInjector(faultinject.New(faultinject.Config{NaNEvery: 7}))
	pl, err := opt.RunContext(context.Background(), IAI)
	if err != nil {
		t.Fatal(err)
	}
	opt.Evaluator().SetFaultInjector(nil)
	checkComplete(t, opt, pl, 13, "IAI-intermittent-nan")
	if pl.Degraded {
		t.Fatalf("intermittent NaN degraded the run: %s", pl.DegradeReason)
	}
	if math.IsNaN(pl.TotalCost) || math.IsInf(pl.TotalCost, 0) || pl.TotalCost <= 0 {
		t.Fatalf("degenerate cost %g", pl.TotalCost)
	}
}

// TestTrackerRejectsNonFiniteIncumbent is the satellite regression test
// for the NaN-poisoning bug: the first offer used to be accepted
// unconditionally, and since `c < NaN` is always false, a NaN first
// offer froze the incumbent forever.
func TestTrackerRejectsNonFiniteIncumbent(t *testing.T) {
	b := cost.Unlimited()
	improvements := 0
	tr := newTracker(b, func(float64, int64) { improvements++ }, nil)

	pNaN := plan.Perm{0, 1, 2}
	tr.offer(pNaN, math.NaN())
	if !tr.ok || tr.finite {
		t.Fatal("NaN offer should be held only as a last resort")
	}
	if improvements != 0 {
		t.Fatal("NaN offer fired the improvement callback")
	}

	pGood := plan.Perm{2, 1, 0}
	tr.offer(pGood, 100)
	if !tr.finite || tr.bestCost != 100 {
		t.Fatalf("finite offer did not displace NaN incumbent: cost=%g", tr.bestCost)
	}
	if improvements != 1 {
		t.Fatalf("improvement callback fired %d times, want 1", improvements)
	}

	// +Inf must not displace a finite incumbent either.
	tr.offer(pNaN, math.Inf(1))
	if tr.bestCost != 100 {
		t.Fatalf("+Inf displaced finite incumbent: %g", tr.bestCost)
	}
	// A better finite offer still wins.
	tr.offer(pNaN, 50)
	if tr.bestCost != 50 || improvements != 2 {
		t.Fatalf("finite improvement lost: cost=%g improvements=%d", tr.bestCost, improvements)
	}
	// A worse finite offer does not.
	tr.offer(pGood, 70)
	if tr.bestCost != 50 {
		t.Fatalf("worse offer accepted: %g", tr.bestCost)
	}
}

// TestPortfolioSurvivorBeatsPanicAndCancel is the portfolio acceptance
// test: one member panics on its first evaluation, one member is
// cancelled before it starts, and the third runs clean. The portfolio
// must return the survivor's valid, NON-degraded plan; the panicking
// member is recorded in its result Err; the cancelled member still
// carries a valid degraded plan.
func TestPortfolioSurvivorBeatsPanicAndCancel(t *testing.T) {
	q := testutil.BenchQuery(12, 31)
	cfg := PortfolioConfig{
		TotalUnits: cost.UnitsFor(9, 12) * 3,
		Seed:       7,
		MemberHook: func(i int, m Method, o *Optimizer) {
			switch i {
			case 0: // panicking member
				o.Evaluator().SetFaultInjector(faultinject.New(faultinject.Config{PanicAt: 1}))
			case 1: // cancelled member
				o.Evaluator().Budget().Cancel()
			}
		},
	}
	best, results, err := PortfolioContext(context.Background(), q, cost.NewMemoryModel(), cfg, IAI, II, AGI)
	if err != nil {
		t.Fatalf("portfolio failed despite a healthy member: %v", err)
	}
	if best == nil || best.Degraded {
		t.Fatalf("portfolio best is degraded or nil: %+v", best)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}

	// Member 0: panicked. Err records it; the salvaged plan is degraded.
	var perr *PanicError
	if results[0].Err == nil || !errors.As(results[0].Err, &perr) {
		t.Fatalf("panicking member Err = %v, want *PanicError", results[0].Err)
	}
	if results[0].Plan == nil || !results[0].Plan.Degraded {
		t.Fatal("panicking member lost its salvaged degraded plan")
	}

	// Member 1: cancelled. No error, valid degraded plan.
	if results[1].Err != nil {
		t.Fatalf("cancelled member errored: %v", results[1].Err)
	}
	if results[1].Plan == nil || !results[1].Plan.Degraded || results[1].Plan.DegradeReason != plan.DegradeCancelled {
		t.Fatalf("cancelled member plan: %+v", results[1].Plan)
	}
	if got := len(results[1].Plan.Order()); got != 13 {
		t.Fatalf("cancelled member plan covers %d of 13 relations", got)
	}

	// Member 2: the survivor; the portfolio's answer is its plan.
	if results[2].Err != nil || results[2].Plan == nil || results[2].Plan.Degraded {
		t.Fatalf("survivor unhealthy: err=%v plan=%+v", results[2].Err, results[2].Plan)
	}
	if best.TotalCost != results[2].Plan.TotalCost {
		t.Fatalf("portfolio answer %g is not the survivor's %g", best.TotalCost, results[2].Plan.TotalCost)
	}
	if got := len(best.Order()); got != 13 {
		t.Fatalf("best plan covers %d of 13 relations", got)
	}
}

// TestPortfolioBudgetShareClamped is the satellite regression test for
// the truncation bug: totalUnits=2 across three members used to
// truncate to 0 units each, and NewBudget(0) means *unlimited* — a tiny
// budget silently became infinite (II would then never terminate).
// With the clamp each member gets 1 unit and stops almost immediately.
func TestPortfolioBudgetShareClamped(t *testing.T) {
	q := testutil.BenchQuery(10, 37)
	done := make(chan struct{})
	var results []PortfolioResult
	var err error
	go func() {
		_, results, err = Portfolio(q, cost.NewMemoryModel(), 2, 3, Options{}, II, SA, PW)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("tiny portfolio budget became unlimited: members never terminated")
	}
	if err != nil {
		t.Fatal(err)
	}
	// Each member had a 1-unit budget; anything beyond one state's worth
	// of work means the clamp regressed to unlimited.
	maxPerState := int64(11*plan.EvalUnitsPerJoin) + 11*11
	for _, r := range results {
		if r.Units > 1+maxPerState*4 {
			t.Fatalf("%v consumed %d units on a 1-unit budget", r.Method, r.Units)
		}
		if r.Plan == nil || len(r.Plan.Order()) != 11 {
			t.Fatalf("%v: incomplete plan under tiny budget", r.Method)
		}
	}
}

// TestPortfolioHedgingCancelsUnboundedMember: with hedging enabled, a
// fast finite member (AugOnly) finishing under the acceptability
// threshold must cancel a member that would otherwise run forever (II
// on an unlimited budget). Without hedging this test cannot terminate.
func TestPortfolioHedgingCancelsUnboundedMember(t *testing.T) {
	q := testutil.BenchQuery(12, 41)
	backstop, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := PortfolioConfig{
		TotalUnits: 0, // unlimited per member: II never stops on its own
		Seed:       9,
		HedgeCost:  math.MaxFloat64, // any finite plan is acceptable
	}
	best, results, err := PortfolioContext(backstop, q, cost.NewMemoryModel(), cfg, AugOnly, II)
	if backstop.Err() != nil {
		t.Fatal("hedging did not cancel the unbounded member; backstop deadline fired")
	}
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || best.Degraded {
		t.Fatalf("hedged portfolio best: %+v", best)
	}
	if results[0].Plan == nil || results[0].Plan.Degraded {
		t.Fatal("hedge winner (AugOnly) should be non-degraded")
	}
	if results[1].Plan == nil {
		t.Fatal("cancelled member returned no plan")
	}
	if !results[1].Plan.Degraded || results[1].Plan.DegradeReason != plan.DegradeCancelled {
		t.Fatalf("hedge-cancelled member plan: Degraded=%v reason=%q",
			results[1].Plan.Degraded, results[1].Plan.DegradeReason)
	}
}

// TestPortfolioAllMembersCancelled: cancelling the parent context
// degrades every member; the portfolio still returns the best degraded
// plan (anytime contract at the portfolio level).
func TestPortfolioAllMembersCancelled(t *testing.T) {
	q := testutil.BenchQuery(10, 43)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	best, results, err := PortfolioContext(ctx, q, cost.NewMemoryModel(),
		PortfolioConfig{TotalUnits: cost.UnitsFor(9, 10) * 2, Seed: 11}, IAI, AGI)
	if err != nil {
		t.Fatalf("fully-cancelled portfolio returned error despite salvage plans: %v", err)
	}
	if best == nil || !best.Degraded {
		t.Fatalf("expected a degraded salvage plan, got %+v", best)
	}
	for _, r := range results {
		if r.Plan == nil || !r.Plan.Degraded {
			t.Fatalf("%v: cancelled member plan %+v", r.Method, r.Plan)
		}
		if len(r.Plan.Order()) != 11 {
			t.Fatalf("%v: incomplete salvage plan", r.Method)
		}
	}
}

// TestRunContextNilContext: a nil context behaves like background (the
// experiment harness passes cfg.Context straight through).
func TestRunContextNilContext(t *testing.T) {
	q := testutil.BenchQuery(8, 47)
	budget := cost.NewBudget(cost.UnitsFor(3, 8))
	opt, err := NewOptimizer(q, cost.NewMemoryModel(), budget, rand.New(rand.NewSource(13)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var nilCtx context.Context
	pl, err := opt.RunContext(nilCtx, IAI)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, opt, pl, 9, "nil-ctx")
	if pl.Degraded {
		t.Fatalf("nil-context run degraded: %s", pl.DegradeReason)
	}
}

// TestRunBackwardCompatible: the original Run signature still behaves
// identically for healthy runs — no degradation, deterministic per
// seed, same plan as RunContext(Background).
func TestRunBackwardCompatible(t *testing.T) {
	q := testutil.BenchQuery(12, 53)
	run := func(viaCtx bool) float64 {
		budget := cost.NewBudget(cost.UnitsFor(3, 12))
		opt, err := NewOptimizer(q.Clone(), cost.NewMemoryModel(), budget, rand.New(rand.NewSource(15)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var pl *plan.Plan
		if viaCtx {
			pl, err = opt.RunContext(context.Background(), IAI)
		} else {
			pl, err = opt.Run(IAI)
		}
		if err != nil {
			t.Fatal(err)
		}
		if pl.Degraded {
			t.Fatal("healthy run flagged degraded")
		}
		return pl.TotalCost
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("Run (%g) and RunContext (%g) diverge on the same seed", a, b)
	}
}
