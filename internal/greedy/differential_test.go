package greedy

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"joinopt/internal/dp"
	"joinopt/internal/workload"
)

// greedySanityRatio is the documented Tier-1 quality bound: on the
// oracle grid (chain/star/cycle/grid, N ≤ 10) a greedy plan stays
// within this factor of the exact DP optimum. It is a
// catastrophic-regression guard like the strategy suite's bound in
// internal/core — greedy is usually within a few x (and often optimal
// on chains/stars, per the "When Greedy Beats Optimal" writeup cited
// in PAPERS.md/SNIPPETS.md), but star/grid queries with adversarial
// selectivity draws can push it far out; that is exactly the case the
// escalation rule and the background Tier-2 upgrade exist for.
const greedySanityRatio = 100.0

// TestDifferentialGreedyOracle extends the differential oracle suite
// to the Tier-1 planner: greedy plans on every shape at N ≤ 10 must be
// valid, finitely priced, never cheaper than the exact left-deep
// optimum under the same static cost function, and within
// greedySanityRatio of it.
func TestDifferentialGreedyOracle(t *testing.T) {
	shapes := []struct {
		name  string
		shape workload.Shape
	}{
		{"chain", workload.ShapeChain},
		{"star", workload.ShapeStar},
		{"cycle", workload.ShapeCycle},
		{"grid", workload.ShapeGrid},
	}
	const slack = 1e-9 // float re-pricing tolerance on the ≥-optimum side
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			for _, n := range []int{4, 7, 9, 10} {
				for _, seed := range []int64{1, 2, 3} {
					q, err := workload.Default().GenerateShape(sh.shape, n, rand.New(rand.NewSource(seed)))
					if err != nil {
						t.Fatalf("n=%d seed=%d: generate: %v", n, seed, err)
					}
					p, err := New(q.Clone(), nil)
					if err != nil {
						t.Fatalf("n=%d seed=%d: New: %v", n, seed, err)
					}
					res := p.Plan()
					if len(res.Order) != n {
						t.Fatalf("n=%d seed=%d: greedy covers %d of %d relations", n, seed, len(res.Order), n)
					}

					eval := oracleEval(t, q.Clone())
					if !eval.Valid(res.Order) {
						t.Fatalf("n=%d seed=%d: invalid greedy order %v (cross product)", n, seed, res.Order)
					}
					// Re-price under the oracle evaluator so the
					// comparison uses one cost function.
					c := eval.Cost(res.Order)
					if math.IsNaN(c) || math.IsInf(c, 0) {
						t.Fatalf("n=%d seed=%d: non-finite greedy cost %g", n, seed, c)
					}

					comps := eval.Stats().Graph().Components()
					if len(comps) != 1 {
						t.Fatalf("n=%d seed=%d: shape generator produced %d components, want 1", n, seed, len(comps))
					}
					optPerm, optCost, err := dp.Optimal(eval, comps[0])
					if err != nil {
						t.Fatalf("n=%d seed=%d: dp oracle: %v", n, seed, err)
					}
					if len(optPerm) != n || math.IsNaN(optCost) || math.IsInf(optCost, 0) {
						t.Fatalf("n=%d seed=%d: degenerate oracle: perm=%d cost=%g", n, seed, len(optPerm), optCost)
					}
					if c < optCost*(1-slack) {
						t.Fatalf("n=%d seed=%d: greedy cost %g undercuts exact optimum %g — inconsistent costing",
							n, seed, c, optCost)
					}
					if optCost > 0 && c > optCost*greedySanityRatio {
						t.Fatalf("n=%d seed=%d: greedy cost %g is %.1fx the optimum %g (sanity ratio %g)",
							n, seed, c, c/optCost, optCost, greedySanityRatio)
					}
				}
			}
		})
	}
}

// TestEscalationFiresOnWorstShape pins the escalation rule to the
// differential grid: with the threshold set between the most expensive
// greedy plan and the runner-up, exactly the worst shape escalates.
// This is the deployment contract of -greedy-threshold — the shapes
// where greedy plans are estimated worst are the ones that pay the
// synchronous full search.
func TestEscalationFiresOnWorstShape(t *testing.T) {
	shapes := []struct {
		name  string
		shape workload.Shape
	}{
		{"chain", workload.ShapeChain},
		{"star", workload.ShapeStar},
		{"cycle", workload.ShapeCycle},
		{"grid", workload.ShapeGrid},
	}
	const n, seed = 9, 1
	costs := make([]float64, len(shapes))
	for i, sh := range shapes {
		q, err := workload.Default().GenerateShape(sh.shape, n, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		costs[i] = p.Plan().TotalCost
	}
	sorted := append([]float64(nil), costs...)
	sort.Float64s(sorted)
	worst, second := sorted[len(sorted)-1], sorted[len(sorted)-2]
	if !(second < worst) {
		t.Skipf("degenerate draw: two shapes tied at cost %g", worst)
	}
	threshold := second + (worst-second)/2
	fired := 0
	for i, sh := range shapes {
		esc := Escalate(costs[i], threshold)
		if esc {
			fired++
		}
		wantEsc := !(costs[i] < worst) // only the worst shape is at/above threshold
		if esc != wantEsc {
			t.Errorf("%s: Escalate(%g, %g) = %v, want %v", sh.name, costs[i], threshold, esc, wantEsc)
		}
	}
	if fired != 1 {
		t.Errorf("escalations fired = %d, want exactly 1 (the worst shape)", fired)
	}
}
