// Package greedy is the Tier-1 planner of the tiered serving ladder: a
// statistics-light greedy join orderer that plans in microseconds and
// allocates nothing per plan, so a cache miss can be answered
// immediately while the full anytime search (internal/core) upgrades
// the cached entry in the background.
//
// The algorithm is the classic min-cost expansion over the join graph
// (the "When Greedy Beats Optimal" recipe excerpted in SNIPPETS.md):
// per connected component, start from the smallest relation and
// repeatedly append the frontier-joinable relation whose next join is
// cheapest under the cost model, using only static per-edge
// selectivities and effective base cardinalities — no distinct-value
// propagation, no histograms. Components are then concatenated
// smallest-final-size-first with cross products priced between them,
// matching plan.Assemble's postpone-cross-products order.
//
// Determinism: the planner is a pure function of (query, model). Ties
// are broken by the lowest canonical relation ID (candidates are
// scanned in ascending ID order and only a strictly cheaper join
// displaces the incumbent pick), so two runs over the same canonical
// query produce byte-identical orders.
//
// Allocation discipline: New does all the allocating (CSR adjacency,
// bitset frontier, scratch and result buffers); Plan is a
// //ljqlint:hotpath function that reuses those buffers and returns a
// pointer into the planner. The greedy-planner benchmarks carry
// 0-allocs/op ceilings in ALLOC_BUDGETS.json.
//
// The package deliberately does not charge a cost.Budget: greedy work
// is bounded by construction (O(V·(V+E)) JoinCost calls), and the
// Result's Work counter reports it after the fact so the serving layer
// can record it as the cached entry's BudgetUsed.
package greedy

import (
	"math"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

// DefaultThreshold is the default escalation ceiling for Escalate: high
// enough that only absurd plans (estimator overflow territory) escalate
// a cold miss to the synchronous full search. Operators lower it with
// ljqd's -greedy-threshold when they would rather pay full-search
// latency up front than ever serve an expensive greedy plan.
const DefaultThreshold = 1e18

// Escalate is the deterministic cost-threshold escalation rule: it
// reports whether a greedy plan with the given estimated total cost is
// too poor to serve and the miss should run the full anytime search
// synchronously instead. A non-finite cost (estimator overflow or
// poisoned statistics) always escalates; otherwise the plan escalates
// when a positive threshold is met or exceeded. threshold <= 0 means
// "never escalate on cost alone".
func Escalate(totalCost, threshold float64) bool {
	if math.IsNaN(totalCost) || math.IsInf(totalCost, 0) {
		return true
	}
	return threshold > 0 && totalCost >= threshold
}

// Result is one greedy plan. Its slices alias the planner's reusable
// buffers: a Result is valid only until the next Plan call on the same
// planner. Use ToPlan for an independent copy.
type Result struct {
	// Order is the full join order: component permutations concatenated
	// in cross-product combination order (smallest final size first).
	Order plan.Perm
	// Components holds one permutation per join-graph component, in
	// combination order; each Perm is a sub-slice of Order.
	Components []plan.Result
	// CrossCost prices the cross products combining the components
	// (zero for connected queries); TotalCost is the sum of component
	// join costs plus CrossCost.
	CrossCost float64
	TotalCost float64
	// Work counts cost-model evaluations performed, in the same spirit
	// as the search budget's unit meter: the serving layer records it
	// as the cached entry's BudgetUsed.
	Work int64
}

// ToPlan renders the result as an independently-owned plan.Plan (the
// shape the plan cache stores). Allocates; call it off the hot path.
func (r *Result) ToPlan() *plan.Plan {
	pl := &plan.Plan{CrossCost: r.CrossCost, TotalCost: r.TotalCost}
	pl.Components = make([]plan.Result, len(r.Components))
	for i, c := range r.Components {
		pl.Components[i] = plan.Result{Perm: c.Perm.Clone(), Cost: c.Cost}
	}
	return pl
}

// Planner is a reusable greedy planner for one query. Build with New
// (which allocates everything Plan will ever need), then call Plan any
// number of times. Not safe for concurrent use.
type Planner struct {
	model cost.Model
	n     int

	// card[r] is relation r's effective cardinality (>= 1).
	card []float64
	// csr is the join graph's shared flat adjacency view (joingraph
	// builds it once per query): incidences of relation r live at
	// csr.Nbr/csr.Sel[csr.Off[r]:csr.Off[r+1]], and NeighborMask(r)
	// feeds the joinability word-AND in selInto.
	csr *joingraph.CSR

	// comps holds the relations of each connected component (ascending
	// IDs within a component), segmented by compOff.
	comps   []int32
	compOff []int32

	// frontier is the joined-so-far membership bitset, reused per
	// component; scratch holds each component's greedy order in comps
	// segmentation; segSize/segCost record each component's final size
	// and summed join cost; segIdx is the combination-order sort
	// permutation; order is the concatenated final order.
	frontier joingraph.Bitset
	scratch  []int32
	segSize  []float64
	segCost  []float64
	segIdx   []int
	order    plan.Perm

	result Result
	work   int64
}

// New builds a planner for q under model (nil model = the memory
// model). The query must validate. New allocates freely; Plan does not.
func New(q *catalog.Query, model cost.Model) (*Planner, error) {
	if model == nil {
		model = cost.NewMemoryModel()
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := q.NumRelations()
	g := joingraph.New(q)
	p := &Planner{model: model, n: n}

	p.card = make([]float64, n)
	for i := range q.Relations {
		p.card[i] = q.Relations[i].EffectiveCardinality()
	}

	p.csr = g.CSR()

	comps := g.Components()
	p.compOff = make([]int32, 1, len(comps)+1)
	p.comps = make([]int32, 0, n)
	for _, comp := range comps {
		for _, r := range comp {
			p.comps = append(p.comps, int32(r))
		}
		p.compOff = append(p.compOff, int32(len(p.comps)))
	}

	p.frontier = joingraph.NewBitset(n)
	p.scratch = make([]int32, n)
	p.segSize = make([]float64, len(comps))
	p.segCost = make([]float64, len(comps))
	p.segIdx = make([]int, len(comps))
	p.order = make(plan.Perm, n)
	p.result.Components = make([]plan.Result, len(comps))
	return p, nil
}

// Plan computes the greedy join order. The returned Result aliases the
// planner's buffers and is valid until the next Plan call.
//
//ljqlint:hotpath
func (p *Planner) Plan() *Result {
	p.work = 0
	ncomp := len(p.compOff) - 1
	total := 0.0
	for c := 0; c < ncomp; c++ {
		total += p.planComponent(c)
	}

	// Combination order: smallest final size first (plan.Assemble's
	// postpone-cross-products order). Insertion sort — ncomp is tiny.
	for i := 0; i < ncomp; i++ {
		p.segIdx[i] = i
	}
	for i := 1; i < ncomp; i++ {
		for j := i; j > 0 && p.segSize[p.segIdx[j]] < p.segSize[p.segIdx[j-1]]; j-- {
			p.segIdx[j], p.segIdx[j-1] = p.segIdx[j-1], p.segIdx[j]
		}
	}

	r := &p.result
	pos := 0
	cross := 0.0
	acc := 0.0
	for i := 0; i < ncomp; i++ {
		ci := p.segIdx[i]
		a, b := int(p.compOff[ci]), int(p.compOff[ci+1])
		start := pos
		for k := a; k < b; k++ {
			p.order[pos] = catalog.RelID(p.scratch[k])
			pos++
		}
		r.Components[i].Perm = p.order[start:pos]
		r.Components[i].Cost = p.segCost[ci]
		if i == 0 {
			acc = p.segSize[ci]
		} else {
			res := acc * p.segSize[ci]
			cross += p.model.JoinCost(acc, p.segSize[ci], res)
			p.work++
			acc = res
		}
	}
	r.Order = p.order[:pos]
	r.CrossCost = cross
	r.TotalCost = total + cross
	r.Work = p.work
	return r
}

// planComponent greedily orders component c into the scratch buffer,
// recording its final size and summed join cost, and returns the cost.
//
//ljqlint:hotpath
func (p *Planner) planComponent(c int) float64 {
	a, b := int(p.compOff[c]), int(p.compOff[c+1])
	p.frontier.Reset()
	// Seed with the smallest relation (ascending scan + strict < means
	// ties go to the lowest ID).
	seed := p.comps[a]
	for i := a + 1; i < b; i++ {
		if p.card[p.comps[i]] < p.card[seed] {
			seed = p.comps[i]
		}
	}
	p.scratch[a] = seed
	p.frontier.Set(catalog.RelID(seed))
	size := p.card[seed]
	totalCost := 0.0
	for filled := 1; filled < b-a; filled++ {
		best := int32(-1)
		bestJoin := false
		bestCost := 0.0
		bestSize := 0.0
		for i := a; i < b; i++ {
			rid := p.comps[i]
			if p.frontier.Test(catalog.RelID(rid)) {
				continue
			}
			sel, joined := p.selInto(rid)
			res := size * p.card[rid] * sel
			jc := p.model.JoinCost(size, p.card[rid], res)
			p.work++
			// Joinable candidates strictly dominate cross products (the
			// cross arm is defensive: a connected component always has a
			// joinable candidate); among equals, only a strictly cheaper
			// join displaces the incumbent, so ties keep the lowest ID.
			if best < 0 || (joined && !bestJoin) || (joined == bestJoin && jc < bestCost) {
				best, bestJoin, bestCost, bestSize = rid, joined, jc, res
			}
		}
		p.scratch[a+filled] = best
		p.frontier.Set(catalog.RelID(best))
		size = bestSize
		totalCost += bestCost
	}
	p.segSize[c] = size
	p.segCost[c] = totalCost
	return totalCost
}

// selInto returns the product of static selectivities of rid's edges
// into the current frontier, and whether any such edge exists. The
// joinability check is a word-AND against rid's precomputed neighbor
// mask; the selectivity walk reads the shared CSR's Nbr/Sel lanes in
// merged-edge order (order-stable float accumulation).
//
//ljqlint:hotpath
func (p *Planner) selInto(rid int32) (float64, bool) {
	if !p.csr.JoinsInto(catalog.RelID(rid), p.frontier) {
		return 1.0, false
	}
	sel := 1.0
	for ei := p.csr.Off[rid]; ei < p.csr.Off[rid+1]; ei++ {
		nb := p.csr.Nbr[ei]
		if p.frontier.Test(catalog.RelID(nb)) {
			sel *= p.csr.Sel[ei]
		}
	}
	return sel, true
}
