package greedy

import (
	"math/rand"
	"testing"

	"joinopt/internal/cost"
	"joinopt/internal/workload"
)

var benchSink float64

// BenchmarkGreedyPlan20 is the Tier-1 steady-state number the ISSUE
// pins: replanning the smoke workload's 20-join query (21 relations,
// same generator seed as serve's TestSmokeEndToEnd) must stay under
// 15µs with 0 allocs/op — the planner is built once and every Plan
// call reuses its buffers. Budgeted in ALLOC_BUDGETS.json.
func BenchmarkGreedyPlan20(b *testing.B) {
	q := workload.Default().Generate(20, rand.New(rand.NewSource(42)))
	p, err := New(q, cost.NewMemoryModel())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = p.Plan().TotalCost
	}
}

// BenchmarkGreedyColdPlan20 prices the cold path the tier orchestrator
// actually pays on a cache miss: construct the planner and plan once.
// Construction allocates by design (CSR adjacency, scratch buffers);
// the budget ceiling guards against accidental bloat, not zero.
func BenchmarkGreedyColdPlan20(b *testing.B) {
	q := workload.Default().Generate(20, rand.New(rand.NewSource(42)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := New(q, cost.NewMemoryModel())
		if err != nil {
			b.Fatal(err)
		}
		benchSink = p.Plan().TotalCost
	}
}

// TestPlanSteadyStateZeroAllocs asserts the 0 allocs/op contract
// directly in the unit suite (the allocgate benchmark gate enforces it
// in CI too, but this fails faster and locally). Skipped under -race:
// the race runtime instruments allocations.
func TestPlanSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	q := workload.Default().Generate(20, rand.New(rand.NewSource(42)))
	p, err := New(q, cost.NewMemoryModel())
	if err != nil {
		t.Fatal(err)
	}
	p.Plan() // warm: first call touches every buffer
	allocs := testing.AllocsPerRun(100, func() {
		benchSink = p.Plan().TotalCost
	})
	if allocs != 0 {
		//ljqlint:allow floatsafe -- comparing an allocation count against the constant zero
		t.Fatalf("Plan allocates %.0f allocs/op in steady state, want 0", allocs)
	}
}
