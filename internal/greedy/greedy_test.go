package greedy

import (
	"math"
	"math/rand"
	"testing"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/workload"
)

// oracleEval builds a static-selectivity evaluator over q — the same
// cost function the greedy planner approximates, used to cross-check
// its orders and costs.
func oracleEval(t *testing.T, q *catalog.Query) *plan.Evaluator {
	t.Helper()
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	return plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
}

func TestPlanValidDeterministicAndConsistent(t *testing.T) {
	shapes := []struct {
		name  string
		shape workload.Shape
	}{
		{"chain", workload.ShapeChain},
		{"star", workload.ShapeStar},
		{"cycle", workload.ShapeCycle},
		{"grid", workload.ShapeGrid},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 42} {
				q, err := workload.Default().GenerateShape(sh.shape, 12, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("seed=%d: generate: %v", seed, err)
				}
				p, err := New(q, cost.NewMemoryModel())
				if err != nil {
					t.Fatalf("seed=%d: New: %v", seed, err)
				}
				res := p.Plan()
				if len(res.Order) != q.NumRelations() {
					t.Fatalf("seed=%d: order covers %d of %d relations", seed, len(res.Order), q.NumRelations())
				}
				seen := make(map[catalog.RelID]bool)
				for _, r := range res.Order {
					if seen[r] {
						t.Fatalf("seed=%d: relation %d appears twice in %v", seed, r, res.Order)
					}
					seen[r] = true
				}
				if math.IsNaN(res.TotalCost) || math.IsInf(res.TotalCost, 0) {
					t.Fatalf("seed=%d: non-finite total cost %g", seed, res.TotalCost)
				}
				if res.Work <= 0 {
					t.Fatalf("seed=%d: work counter %d, want > 0", seed, res.Work)
				}

				eval := oracleEval(t, q.Clone())
				if !eval.Valid(res.Order) {
					t.Fatalf("seed=%d: greedy order %v has a hidden cross product", seed, res.Order)
				}
				// The greedy hotpath and the static evaluator share the
				// same recurrence; their totals must agree closely.
				repriced := eval.Cost(res.Order)
				if diff := math.Abs(repriced - res.TotalCost); diff > 1e-6*math.Max(1, math.Abs(repriced)) {
					t.Fatalf("seed=%d: greedy total %g vs static evaluator %g", seed, res.TotalCost, repriced)
				}

				// Determinism: a second Plan on the same planner and a
				// fresh planner both reproduce the order and cost bits.
				res2 := p.Plan()
				if math.Float64bits(res2.TotalCost) != math.Float64bits(res.TotalCost) {
					t.Fatalf("seed=%d: replanning drifted cost", seed)
				}
				p3, err := New(q.Clone(), cost.NewMemoryModel())
				if err != nil {
					t.Fatal(err)
				}
				res3 := p3.Plan()
				for i := range res.Order {
					if res.Order[i] != res3.Order[i] {
						t.Fatalf("seed=%d: fresh planner order %v != %v", seed, res3.Order, res.Order)
					}
				}
			}
		})
	}
}

// TestDisconnectedComponents: each component is contiguous in the final
// order, components combine smallest-final-size-first, and the cross
// products are priced.
func TestDisconnectedComponents(t *testing.T) {
	// Two components: {0,1} joined (big: 1000x1000), {2,3} joined
	// (small: 10x10). The small component must come first.
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "A", Cardinality: 1000},
			{Name: "B", Cardinality: 1000},
			{Name: "C", Cardinality: 10},
			{Name: "D", Cardinality: 10},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 100, RightDistinct: 100},
			{Left: 2, Right: 3, LeftDistinct: 5, RightDistinct: 5},
		},
	}
	p, err := New(q, cost.NewMemoryModel())
	if err != nil {
		t.Fatal(err)
	}
	res := p.Plan()
	if len(res.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(res.Components))
	}
	first := res.Components[0].Perm
	if !(first[0] >= 2 && first[1] >= 2) {
		t.Fatalf("smaller component must combine first; got leading perm %v (order %v)", first, res.Order)
	}
	if res.CrossCost <= 0 {
		t.Fatalf("cross cost %g, want > 0 for a disconnected query", res.CrossCost)
	}
	if res.TotalCost <= res.CrossCost {
		t.Fatalf("total %g must include component costs beyond cross cost %g", res.TotalCost, res.CrossCost)
	}
}

func TestToPlanIsIndependent(t *testing.T) {
	q := workload.Default().Generate(8, rand.New(rand.NewSource(3)))
	p, err := New(q, cost.NewMemoryModel())
	if err != nil {
		t.Fatal(err)
	}
	res := p.Plan()
	pl := res.ToPlan()
	want := append(plan.Perm(nil), res.Order...)
	// Replanning reuses the buffers; the cloned plan must not move.
	p.Plan()
	got := pl.Order()
	if len(got) != len(want) {
		t.Fatalf("cloned plan order length drifted: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cloned plan order drifted at %d: %v != %v", i, got, want)
		}
	}
	if math.Float64bits(pl.TotalCost) != math.Float64bits(res.TotalCost) {
		t.Fatal("cloned plan cost drifted")
	}
}

func TestEscalate(t *testing.T) {
	cases := []struct {
		cost, threshold float64
		want            bool
	}{
		{100, 0, false},         // no threshold: never escalate on cost
		{100, -1, false},        // negative threshold treated as "off"
		{100, 200, false},       // below threshold
		{200, 200, true},        // at threshold
		{1e30, 200, true},       // above threshold
		{math.NaN(), 0, true},   // poisoned cost always escalates
		{math.Inf(1), 0, true},  // overflow always escalates
		{math.Inf(-1), 0, true}, // nonsense always escalates
	}
	for _, c := range cases {
		if got := Escalate(c.cost, c.threshold); got != c.want {
			t.Errorf("Escalate(%g, %g) = %v, want %v", c.cost, c.threshold, got, c.want)
		}
	}
}

func TestSingleRelationAndSingleComponentEdgeCases(t *testing.T) {
	q := &catalog.Query{Relations: []catalog.Relation{{Name: "A", Cardinality: 5}}}
	p, err := New(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Plan()
	if len(res.Order) != 1 || res.Order[0] != 0 {
		t.Fatalf("single-relation order = %v", res.Order)
	}
	if res.TotalCost != 0 || res.CrossCost != 0 {
		//ljqlint:allow floatsafe -- test file: constants, not computed floats
		t.Fatalf("single-relation plan must cost 0, got total=%g cross=%g", res.TotalCost, res.CrossCost)
	}
}
