//go:build !race

package greedy

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped when it does.
const raceEnabled = false
