package qdsl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"joinopt/internal/workload"
)

const sample = `
# a three-relation chain
relation orders    1000000 select 0.1 0.5
relation customers 50000
relation nation    25

join orders customers distinct 50000 50000
join customers nation selectivity 0.04
`

func TestParseSample(t *testing.T) {
	q, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 3 || len(q.Predicates) != 2 {
		t.Fatalf("shape: %d relations, %d predicates", len(q.Relations), len(q.Predicates))
	}
	if q.Relations[0].Name != "orders" || q.Relations[0].Cardinality != 1000000 {
		t.Fatalf("relation 0: %+v", q.Relations[0])
	}
	if len(q.Relations[0].Selections) != 2 || q.Relations[0].Selections[1].Selectivity != 0.5 {
		t.Fatalf("selections: %+v", q.Relations[0].Selections)
	}
	if q.Predicates[0].LeftDistinct != 50000 {
		t.Fatalf("predicate 0: %+v", q.Predicates[0])
	}
	if q.Predicates[1].Selectivity != 0.04 {
		t.Fatalf("predicate 1: %+v", q.Predicates[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"unknown stmt", "frobnicate x", "unknown statement"},
		{"short relation", "relation a", "needs a name"},
		{"bad cardinality", "relation a pots", "cardinality"},
		{"dup relation", "relation a 5\nrelation a 5", "declared twice"},
		{"select no values", "relation a 5 select", "at least one"},
		{"bad selectivity", "relation a 5 select x", "selectivity"},
		{"not select", "relation a 5 filter 0.5", "expected 'select'"},
		{"short join", "relation a 5\nrelation b 5\njoin a b", "join needs"},
		{"unknown rel", "relation a 5\njoin a b distinct 1 1", "unknown relation"},
		{"bad mode", "relation a 5\nrelation b 5\njoin a b on 1 1", "expected 'distinct'"},
		{"distinct arity", "relation a 5\nrelation b 5\njoin a b distinct 1", "exactly two"},
		{"selectivity arity", "relation a 5\nrelation b 5\njoin a b selectivity 1 2", "exactly one"},
		{"bad distinct", "relation a 5\nrelation b 5\njoin a b distinct x 1", "left distinct"},
		{"invalid query", "relation a -5", "cardinality"}, // catalog validation fires too
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.in)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseReportsLineNumbers(t *testing.T) {
	_, err := ParseString("relation a 5\n\n# comment\nbogus here")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("line number missing: %v", err)
	}
}

// TestFormatRoundTrip: Format(Parse(x)) re-parses to the same query,
// for generated benchmark queries.
func TestFormatRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz%20)
		q := workload.Default().Generate(n, rand.New(rand.NewSource(seed)))
		text := Format(q)
		back, err := ParseString(text)
		if err != nil {
			return false
		}
		if len(back.Relations) != len(q.Relations) || len(back.Predicates) != len(q.Predicates) {
			return false
		}
		for i := range q.Relations {
			if back.Relations[i].Cardinality != q.Relations[i].Cardinality ||
				len(back.Relations[i].Selections) != len(q.Relations[i].Selections) {
				return false
			}
		}
		for i := range q.Predicates {
			a, b := q.Predicates[i], back.Predicates[i]
			if a.Left != b.Left || a.Right != b.Right ||
				a.LeftDistinct != b.LeftDistinct || a.RightDistinct != b.RightDistinct {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParseValidatesWholeQuery(t *testing.T) {
	// Structurally fine but semantically invalid (selectivity > 1).
	_, err := ParseString("relation a 5\nrelation b 5\njoin a b selectivity 2.5")
	if err == nil {
		t.Fatal("invalid selectivity accepted")
	}
}
