package qdsl

import (
	"testing"
)

// FuzzQDSLRoundTrip feeds arbitrary text to the DSL parser: it must
// never panic, and any query it accepts must reach a print→parse fixed
// point — Format(Parse(x)) reparsed yields the same Format output.
// (The first Format is allowed to differ from the raw input: the DSL
// normalizes names, drops comments, and renders floats in %g. The
// fixed point is the actual contract: Format's output is itself valid
// DSL describing the same query.)
func FuzzQDSLRoundTrip(f *testing.F) {
	f.Add("relation a 100\nrelation b 200\njoin a b distinct 10 20\n")
	f.Add("relation a 100 select 0.5\nrelation b 2\njoin a b selectivity 0.01\n")
	f.Add("# comment\nrelation r0 5\nrelation r1 7\nrelation r2 9\n" +
		"join r0 r1 distinct 2 3\njoin r1 r2 selectivity 0.25\n")
	f.Add("relation x 1\n")
	f.Add("")
	f.Add("relation a 9e18\nrelation b 1\njoin a b distinct 1e-300 1e300\n")

	f.Fuzz(func(t *testing.T, input string) {
		q, err := ParseString(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid query: %v", err)
		}
		first := Format(q)
		q2, err := ParseString(first)
		if err != nil {
			t.Fatalf("Format produced unparseable DSL: %v\n----\n%s", err, first)
		}
		second := Format(q2)
		if first != second {
			t.Fatalf("print->parse->print not a fixed point:\n--- first\n%s\n--- second\n%s", first, second)
		}
	})
}
