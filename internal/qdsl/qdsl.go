// Package qdsl parses a small textual query-description language, the
// human-friendly alternative to the JSON interchange format:
//
//	# comments and blank lines are ignored
//	relation orders    1000000 select 0.1 0.5
//	relation customers 50000
//	relation nation    25
//	join orders customers distinct 50000 50000
//	join customers nation selectivity 0.04
//
// Statements:
//
//	relation <name> <cardinality> [select <selectivity>...]
//	join <name> <name> distinct <left> <right>
//	join <name> <name> selectivity <J>
//
// Relations are declared before the joins that use them; names are
// unique. The parser reports errors with line numbers.
package qdsl

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"joinopt/internal/catalog"
)

// Parse reads a query description.
func Parse(r io.Reader) (*catalog.Query, error) {
	q := &catalog.Query{}
	index := make(map[string]catalog.RelID)

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "relation":
			if err := parseRelation(q, index, fields); err != nil {
				return nil, fmt.Errorf("qdsl: line %d: %w", lineNo, err)
			}
		case "join":
			if err := parseJoin(q, index, fields); err != nil {
				return nil, fmt.Errorf("qdsl: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("qdsl: line %d: unknown statement %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("qdsl: %w", err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q.Normalize()
	return q, nil
}

// ParseString parses a query description from a string.
func ParseString(s string) (*catalog.Query, error) {
	return Parse(strings.NewReader(s))
}

// ParseLimit parses a query description from an untrusted reader,
// refusing inputs larger than max bytes with an error satisfying
// errors.Is(err, catalog.ErrTooLarge). This is the entry point the
// serve boundary uses: an oversized — possibly hostile — body fails
// loudly instead of being truncated to a valid prefix. A non-positive
// max means no cap.
func ParseLimit(r io.Reader, max int64) (*catalog.Query, error) {
	// Slurp through the cap before parsing: bufio.Scanner would
	// otherwise hand the parser the truncated final line as a token
	// before surfacing the read error, masking ErrTooLarge behind a
	// spurious syntax error. Memory use is bounded by max.
	data, err := io.ReadAll(catalog.CapReader(r, max))
	if err != nil {
		return nil, fmt.Errorf("qdsl: %w", err)
	}
	return Parse(bytes.NewReader(data))
}

func parseRelation(q *catalog.Query, index map[string]catalog.RelID, fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("relation needs a name and a cardinality")
	}
	name := fields[1]
	if _, dup := index[name]; dup {
		return fmt.Errorf("relation %q declared twice", name)
	}
	card, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return fmt.Errorf("cardinality %q: %v", fields[2], err)
	}
	rel := catalog.Relation{Name: name, Cardinality: card}
	rest := fields[3:]
	if len(rest) > 0 {
		if rest[0] != "select" {
			return fmt.Errorf("expected 'select', got %q", rest[0])
		}
		if len(rest) == 1 {
			return fmt.Errorf("'select' needs at least one selectivity")
		}
		for _, f := range rest[1:] {
			sel, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return fmt.Errorf("selectivity %q: %v", f, err)
			}
			rel.Selections = append(rel.Selections, catalog.Selection{Selectivity: sel})
		}
	}
	index[name] = catalog.RelID(len(q.Relations))
	q.Relations = append(q.Relations, rel)
	return nil
}

func parseJoin(q *catalog.Query, index map[string]catalog.RelID, fields []string) error {
	if len(fields) < 5 {
		return fmt.Errorf("join needs two relations and 'distinct l r' or 'selectivity J'")
	}
	left, ok := index[fields[1]]
	if !ok {
		return fmt.Errorf("unknown relation %q", fields[1])
	}
	right, ok := index[fields[2]]
	if !ok {
		return fmt.Errorf("unknown relation %q", fields[2])
	}
	p := catalog.Predicate{Left: left, Right: right}
	switch fields[3] {
	case "distinct":
		if len(fields) != 6 {
			return fmt.Errorf("'distinct' needs exactly two counts")
		}
		l, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return fmt.Errorf("left distinct %q: %v", fields[4], err)
		}
		r, err := strconv.ParseFloat(fields[5], 64)
		if err != nil {
			return fmt.Errorf("right distinct %q: %v", fields[5], err)
		}
		p.LeftDistinct, p.RightDistinct = l, r
	case "selectivity":
		if len(fields) != 5 {
			return fmt.Errorf("'selectivity' needs exactly one value")
		}
		j, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return fmt.Errorf("selectivity %q: %v", fields[4], err)
		}
		p.Selectivity = j
	default:
		return fmt.Errorf("expected 'distinct' or 'selectivity', got %q", fields[3])
	}
	q.Predicates = append(q.Predicates, p)
	return nil
}

// Format renders a query back into the DSL (histograms, which the DSL
// cannot express, are dropped).
func Format(q *catalog.Query) string {
	var b strings.Builder
	for i, r := range q.Relations {
		fmt.Fprintf(&b, "relation %s %d", nameOf(q, catalog.RelID(i)), r.Cardinality)
		if len(r.Selections) > 0 {
			b.WriteString(" select")
			for _, s := range r.Selections {
				fmt.Fprintf(&b, " %g", s.Selectivity)
			}
		}
		b.WriteByte('\n')
	}
	for _, p := range q.Predicates {
		if p.LeftDistinct >= 1 || p.RightDistinct >= 1 {
			fmt.Fprintf(&b, "join %s %s distinct %g %g\n",
				nameOf(q, p.Left), nameOf(q, p.Right), p.LeftDistinct, p.RightDistinct)
		} else {
			fmt.Fprintf(&b, "join %s %s selectivity %g\n",
				nameOf(q, p.Left), nameOf(q, p.Right), p.Selectivity)
		}
	}
	return b.String()
}

func nameOf(q *catalog.Query, id catalog.RelID) string {
	return q.RelationName(id)
}
