package qdsl

import (
	"errors"
	"strings"
	"testing"

	"joinopt/internal/catalog"
)

const limitSample = "relation a 100\nrelation b 200\njoin a b selectivity 0.1\n"

func TestParseLimitUnderCap(t *testing.T) {
	q, err := ParseLimit(strings.NewReader(limitSample), int64(len(limitSample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 2 {
		t.Fatalf("relations = %d", len(q.Relations))
	}
}

func TestParseLimitOverCap(t *testing.T) {
	_, err := ParseLimit(strings.NewReader(limitSample), 10)
	if !errors.Is(err, catalog.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestParseLimitNoCap(t *testing.T) {
	if _, err := ParseLimit(strings.NewReader(limitSample), 0); err != nil {
		t.Fatal(err)
	}
}
