// Package vfs is the narrow filesystem seam the durability layer
// writes through. internal/persist performs every mutating operation —
// create, append, write, fsync, rename, remove — via the FS interface,
// so tests can substitute an in-memory filesystem (Mem) and the fault
// harness can substitute one that tears writes, fails fsyncs, or
// "loses power" at a scheduled operation (faultinject.FaultFS).
//
// The interface is deliberately minimal: exactly the operations the
// crash-safe journal/snapshot protocol needs, with the durability
// points (Sync on files, SyncDir on directories) explicit so a fault
// filesystem can model what is and is not on disk when the plug is
// pulled.
package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is a writable file handle. Write may be called repeatedly;
// Sync is the durability point (data written before a successful Sync
// must survive a crash); Close releases the handle without implying
// durability.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	// Close releases the handle. Closing does not imply Sync.
	Close() error
}

// FS is the filesystem surface the persistence layer uses.
type FS interface {
	// Create opens name for writing, truncating it if it exists and
	// creating it otherwise.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// ReadFile returns the entire contents of name. A missing file
	// surfaces as an error satisfying os.IsNotExist / fs.ErrNotExist.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name. Removing a missing file is an error
	// (callers that tolerate absence check os.IsNotExist).
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making renames and creates
	// inside it durable.
	SyncDir(dir string) error
}

// ---------------------------------------------------------------------
// OS: the real filesystem.

// OS implements FS on the host filesystem.
type OS struct{}

// Create implements FS.
func (OS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Append implements FS.
func (OS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS: open the directory and fsync it.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// ---------------------------------------------------------------------
// Mem: an in-memory filesystem for hermetic, fast crash tests.

// Mem is an in-memory FS. It is safe for concurrent use. Sync and
// SyncDir are no-ops (every write is immediately "durable"), which is
// the conservative model for crash tests layered on top: a fault
// filesystem that wants weaker durability injects the loss itself.
type Mem struct {
	mu    sync.Mutex
	files map[string]*memNode
	dirs  map[string]bool
}

// memNode is the "inode": file identity survives renames, and a handle
// holding a node that is no longer linked under its name writes into
// the unlinked inode — invisible to readers, exactly like POSIX.
type memNode struct {
	data []byte
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memNode), dirs: make(map[string]bool)}
}

// memFile is a handle onto a Mem inode. Writes publish immediately
// (byte-granular durability; fault injection layers tear writes above
// this) — but only reach readers while the inode is still linked.
type memFile struct {
	fs     *Mem
	node   *memNode
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	// Writes go to the inode. If the name was renamed-over or removed,
	// the inode is unlinked: the bytes land where no reader will ever
	// look — the property the snapshot protocol's crash-safety relies
	// on (a stale journal handle must not corrupt the published file).
	f.node.data = append(f.node.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}

// Create implements FS.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := &memNode{}
	m.files[name] = n
	return &memFile{fs: m, node: n}, nil
}

// Append implements FS.
func (m *Mem) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		n = &memNode{}
		m.files[name] = n
	}
	return &memFile{fs: m, node: n}, nil
}

// ReadFile implements FS.
func (m *Mem) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, nil
}

// Rename implements FS.
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	m.files[newname] = n
	delete(m.files, oldname)
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// MkdirAll implements FS.
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := filepath.Clean(dir); d != "." && d != string(filepath.Separator); d = filepath.Dir(d) {
		m.dirs[d] = true
	}
	return nil
}

// SyncDir implements FS (no-op: Mem is always "durable").
func (m *Mem) SyncDir(string) error { return nil }

// Names returns the sorted file names currently present (test helper).
func (m *Mem) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	//ljqlint:allow detrand -- order-insensitive collection; sorted immediately below
	for n := range m.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Truncate shortens an existing file to n bytes (test helper for
// hand-crafting torn tails).
func (m *Mem) Truncate(name string, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	nd, ok := m.files[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if n < len(nd.data) {
		nd.data = nd.data[:n]
	}
	return nil
}

// Corrupt flips a bit at byte offset off of name (test helper).
func (m *Mem) Corrupt(name string, off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	nd, ok := m.files[name]
	if !ok || off >= len(nd.data) {
		return &os.PathError{Op: "corrupt", Path: name, Err: os.ErrNotExist}
	}
	nd.data[off] ^= 0x40
	return nil
}

// HasPrefixFile reports whether any present file name starts with
// prefix (test helper: temp-file leak checks).
func (m *Mem) HasPrefixFile(prefix string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	//ljqlint:allow detrand -- existence check: any-order scan yields the same boolean
	for n := range m.files {
		if strings.HasPrefix(n, prefix) {
			return true
		}
	}
	return false
}
