package vfs

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// implementations runs a test against both FS implementations: the
// durability layer must behave identically over the real filesystem
// and the in-memory model the chaos harness wraps.
func implementations(t *testing.T) map[string]FS {
	t.Helper()
	return map[string]FS{
		"mem": NewMem(),
		"os":  OS{},
	}
}

// path roots names for the OS implementation inside a temp dir; Mem
// paths are plain keys.
func rooted(t *testing.T, name string, fs FS) string {
	t.Helper()
	if _, ok := fs.(OS); ok {
		return filepath.Join(t.TempDir(), name)
	}
	return name
}

func TestCreateWriteReadBack(t *testing.T) {
	for label, fs := range implementations(t) {
		t.Run(label, func(t *testing.T) {
			p := rooted(t, "dir/file.bin", fs)
			if err := fs.MkdirAll(filepath.Dir(p)); err != nil {
				t.Fatal(err)
			}
			f, err := fs.Create(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("hello ")); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("world")); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := fs.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != "hello world" {
				t.Fatalf("read back %q", data)
			}
		})
	}
}

func TestAppendExtends(t *testing.T) {
	for label, fs := range implementations(t) {
		t.Run(label, func(t *testing.T) {
			p := rooted(t, "log", fs)
			if err := fs.MkdirAll(filepath.Dir(p)); err != nil {
				t.Fatal(err)
			}
			f, _ := fs.Create(p)
			_, _ = f.Write([]byte("aa"))
			_ = f.Close()
			g, err := fs.Append(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.Write([]byte("bb")); err != nil {
				t.Fatal(err)
			}
			_ = g.Close()
			data, _ := fs.ReadFile(p)
			if string(data) != "aabb" {
				t.Fatalf("append produced %q, want aabb", data)
			}
		})
	}
}

func TestRenameReplacesAtomically(t *testing.T) {
	for label, fs := range implementations(t) {
		t.Run(label, func(t *testing.T) {
			dir := rooted(t, "d", fs)
			if err := fs.MkdirAll(dir); err != nil {
				t.Fatal(err)
			}
			oldp, newp := filepath.Join(dir, "x.tmp"), filepath.Join(dir, "x")
			for _, w := range []struct{ p, s string }{{newp, "old"}, {oldp, "new"}} {
				f, _ := fs.Create(w.p)
				_, _ = f.Write([]byte(w.s))
				_ = f.Close()
			}
			if err := fs.Rename(oldp, newp); err != nil {
				t.Fatal(err)
			}
			data, _ := fs.ReadFile(newp)
			if string(data) != "new" {
				t.Fatalf("rename target holds %q, want new", data)
			}
			if _, err := fs.ReadFile(oldp); !os.IsNotExist(err) {
				t.Fatalf("rename source still readable (err=%v)", err)
			}
		})
	}
}

func TestRemoveMissingIsNotExist(t *testing.T) {
	for label, fs := range implementations(t) {
		t.Run(label, func(t *testing.T) {
			p := rooted(t, "gone", fs)
			if fsOS, ok := fs.(OS); ok {
				_ = fsOS.MkdirAll(filepath.Dir(p))
			}
			if err := fs.Remove(p); !os.IsNotExist(err) {
				t.Fatalf("Remove(missing) = %v, want IsNotExist", err)
			}
		})
	}
}

func TestReadMissingIsNotExist(t *testing.T) {
	for label, fs := range implementations(t) {
		t.Run(label, func(t *testing.T) {
			if _, err := fs.ReadFile(rooted(t, "nope", fs)); !os.IsNotExist(err) {
				t.Fatalf("ReadFile(missing) = %v, want IsNotExist", err)
			}
		})
	}
}

// TestMemWritesToReplacedFileAreDropped pins the POSIX unlinked-inode
// model: a handle that was renamed over keeps writing into the void,
// not into the new file — the property the snapshot protocol's
// crash-safety relies on.
func TestMemWritesToReplacedFileAreDropped(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("a")
	_, _ = f.Write([]byte("first"))

	g, _ := m.Create("a.tmp")
	_, _ = g.Write([]byte("second"))
	_ = g.Close()
	if err := m.Rename("a.tmp", "a"); err != nil {
		t.Fatal(err)
	}

	// The stale handle's writes must not corrupt the published file.
	_, _ = f.Write([]byte("GARBAGE"))
	_ = f.Close()
	data, _ := m.ReadFile("a")
	if string(data) != "second" {
		t.Fatalf("published file holds %q, want second", data)
	}
}

func TestMemTestHelpers(t *testing.T) {
	m := NewMem()
	for _, n := range []string{"b", "a"} {
		f, _ := m.Create(n)
		_, _ = f.Write([]byte("0123456789"))
		_ = f.Close()
	}
	names := m.Names()
	sort.Strings(names)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if err := m.Truncate("a", 4); err != nil {
		t.Fatal(err)
	}
	data, _ := m.ReadFile("a")
	if string(data) != "0123" {
		t.Fatalf("truncated file = %q", data)
	}
	if err := m.Corrupt("b", 5); err != nil {
		t.Fatal(err)
	}
	data, _ = m.ReadFile("b")
	if data[5] == '5' {
		t.Fatal("Corrupt did not flip the byte")
	}
	if !m.HasPrefixFile("a") || m.HasPrefixFile("zz") {
		t.Fatal("HasPrefixFile misbehaved")
	}
}
