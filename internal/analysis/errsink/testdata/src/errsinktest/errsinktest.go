// Package errsinktest exercises the errsink analyzer: durability
// errors (Sync/SyncDir/Close/Rename) must not be discarded or
// shadowed.
package errsinktest

// File mimics the vfs.File surface.
type File struct{}

func (f *File) Sync() error  { return nil }
func (f *File) Close() error { return nil }

// FS mimics the vfs.FS surface.
type FS struct{}

func (fs *FS) Rename(oldpath, newpath string) error { return nil }
func (fs *FS) SyncDir(dir string) error             { return nil }

// bareStatement drops the Close error on the floor.
func bareStatement(f *File) {
	f.Close() // want `f\.Close\(\): error discarded`
}

// bareDefer defers a Close with nowhere for the error to go.
func bareDefer(f *File) {
	defer f.Close() // want `deferred f\.Close\(\) discards its error`
}

// blankOutsideHandler discards to blank on the happy path.
func blankOutsideHandler(f *File) {
	_ = f.Close() // want `error discarded to blank outside an error-handling branch`
}

// shadowed overwrites the Sync error before anyone looks at it.
func shadowed(f *File) error {
	err := f.Sync()
	err = f.Close() // want `assignment overwrites the unexamined error from f\.Sync\(\)`
	return err
}

// ignoredOnOnePath examines the error on one branch only; the other
// branch lets a rename failure escape silently.
func ignoredOnOnePath(f *File, cond bool) error {
	err := f.Sync() // want `error from f\.Sync\(\) may reach function exit unexamined`
	if cond {
		return nil
	}
	return err
}
