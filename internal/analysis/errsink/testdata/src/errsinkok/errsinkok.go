// Package errsinkok holds clean durability-error patterns the errsink
// analyzer must accept without diagnostics.
package errsinkok

import "fmt"

// File mimics the vfs.File surface.
type File struct{}

func (f *File) Sync() error  { return nil }
func (f *File) Close() error { return nil }

// FS mimics the vfs.FS surface.
type FS struct{}

func (fs *FS) Rename(oldpath, newpath string) error { return nil }
func (fs *FS) SyncDir(dir string) error             { return nil }

// checkEach examines every error where it happens.
func checkEach(f *File) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	return nil
}

// propagate hands the obligation to the caller.
func propagate(f *File) error {
	return f.Close()
}

// syncThenClose is the vfs.SyncDir idiom: both errors captured, sync
// error wins, close error still surfaces.
func syncThenClose(f *File) error {
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// bestEffortCleanup discards a Close inside an error-handling branch:
// the function is already failing, cleanup is best-effort by design.
func bestEffortCleanup(f *File, write func() error) error {
	if err := write(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// joined combines both errors before anyone branches.
func joined(fs *FS, f *File, tmp, final string) error {
	err := fs.Rename(tmp, final)
	if err != nil {
		return err
	}
	err = fs.SyncDir(final)
	return err
}
