package errsink_test

import (
	"testing"

	"joinopt/internal/analysis/analysistest"
	"joinopt/internal/analysis/errsink"
)

func TestErrSink(t *testing.T) {
	analysistest.Run(t, "testdata", errsink.Analyzer, "errsinktest", "errsinkok")
}
