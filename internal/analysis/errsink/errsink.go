// Package errsink checks that errors returned by durability-bearing
// calls — methods named Sync, SyncDir, Close or Rename whose last
// result is an error (the vfs.FS / vfs.File surface, os files, journal
// handles) — are not discarded or shadowed. On the persistence paths a
// swallowed Close or Sync error is a lost-write the crash-loop harness
// can never see.
//
// Flagged:
//   - a designated call as a bare statement or bare defer;
//   - `_ = f.Close()` outside an error-handling branch (inside an
//     `err != nil` block the process is already on a failure path and
//     best-effort cleanup is the established idiom — those are
//     permitted);
//   - an error variable holding a designated call's result that is
//     overwritten before being examined (shadowing), or never examined
//     on any path to the function's exit (dataflow over the CFG; a
//     read anywhere — a condition, a return, a call argument, a
//     closure — counts).
//
// Propagating without looking (`return f.Close()`) is fine: the caller
// inherits the obligation.
package errsink

import (
	"go/ast"
	"go/token"
	"go/types"

	"joinopt/internal/analysis"
	"joinopt/internal/analysis/cfg"
)

// Analyzer is the errsink analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "Sync/SyncDir/Close/Rename errors on durability paths must not be discarded or shadowed",
	Run:  run,
}

var designatedNames = map[string]bool{
	"Sync": true, "SyncDir": true, "Close": true, "Rename": true,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		c.permitted = errorBranchSpans(file, pass.TypesInfo)
		c.reportSyntactic(file)
		analysis.WalkFuncs(file, func(node ast.Node, body *ast.BlockStmt) {
			c.checkFunc(body)
		})
	}
	return nil
}

type span struct{ lo, hi token.Pos }

type checker struct {
	pass      *analysis.Pass
	permitted []span
}

// designatedCall reports whether call is a Sync/SyncDir/Close/Rename
// function or method whose last result is an error.
func designatedCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || !designatedNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errorBranchSpans collects the body ranges of `if <err-test>` blocks:
// inside one, the function is already handling a failure and
// best-effort `_ = f.Close()` cleanup is permitted.
func errorBranchSpans(file *ast.File, info *types.Info) []span {
	var out []span
	ast.Inspect(file, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Cond == nil {
			return true
		}
		if condTestsError(ifs.Cond, info) {
			out = append(out, span{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return out
}

// condTestsError reports whether the condition compares an error-typed
// expression against nil somewhere.
func condTestsError(cond ast.Expr, info *types.Info) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if t := info.TypeOf(side); t != nil && isErrorType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func (c *checker) inPermittedSpan(pos token.Pos) bool {
	for _, s := range c.permitted {
		if s.lo <= pos && pos < s.hi {
			return true
		}
	}
	return false
}

// reportSyntactic flags bare-statement, bare-defer and blank-assigned
// designated calls.
func (c *checker) reportSyntactic(file *ast.File) {
	info := c.pass.TypesInfo
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && designatedCall(info, call) {
				c.pass.Reportf(call.Pos(), "%s: error discarded", types.ExprString(call))
			}
		case *ast.DeferStmt:
			if designatedCall(info, st.Call) {
				c.pass.Reportf(st.Call.Pos(), "deferred %s discards its error", types.ExprString(st.Call))
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok || !designatedCall(info, call) {
				return true
			}
			allBlank := true
			for _, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if allBlank && !c.inPermittedSpan(st.Pos()) {
				c.pass.Reportf(st.Pos(), "%s: error discarded to blank outside an error-handling branch", types.ExprString(call))
			}
		}
		return true
	})
}

// source records one tracked, not-yet-examined error value.
type source struct {
	pos  token.Pos
	text string
}

// state maps error variables to the designated call whose result they
// hold, while unexamined. nil = unreached.
type state map[*types.Var]source

func clone(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	g := cfg.Build(body)
	prob := cfg.Problem[state]{
		Entry:  state{},
		Bottom: func() state { return nil },
		Transfer: func(n ast.Node, s state) state {
			if s == nil {
				return nil
			}
			return c.transfer(n, s, nil)
		},
		Merge: func(a, b state) state {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			// May-unread: a value that can reach a join unexamined on
			// either path keeps its obligation.
			out := state{}
			for k, av := range a {
				if bv, ok := b[k]; ok && bv.pos < av.pos {
					av = bv
				}
				out[k] = av
			}
			for k, bv := range b {
				if _, ok := a[k]; !ok {
					out[k] = bv
				}
			}
			return out
		},
		Equal: func(a, b state) bool {
			if (a == nil) != (b == nil) || len(a) != len(b) {
				return false
			}
			for k, av := range a {
				if bv, ok := b[k]; !ok || av != bv {
					return false
				}
			}
			return true
		},
	}
	res := cfg.Forward(g, prob)

	reported := map[token.Pos]bool{}
	// Deterministic re-walk from the fixpoint inputs to report shadows
	// at their precise assignment.
	for _, b := range g.Blocks {
		s := res.In[b]
		if s == nil {
			continue
		}
		s = clone(s)
		for _, n := range b.Nodes {
			s = c.transfer(n, s, func(pos token.Pos, format string, args ...any) {
				if !reported[pos] {
					reported[pos] = true
					c.pass.Reportf(pos, format, args...)
				}
			})
		}
	}
	if s := res.In[g.Exit]; s != nil {
		for _, src := range s {
			if !reported[src.pos] {
				reported[src.pos] = true
				c.pass.Reportf(src.pos, "error from %s may reach function exit unexamined", src.text)
			}
		}
	}
}

// transfer applies one node; report (when non-nil) receives shadowing
// diagnostics — it is nil during fixpoint iteration.
func (c *checker) transfer(n ast.Node, s state, report func(token.Pos, string, ...any)) state {
	info := c.pass.TypesInfo
	// A return inside an error-handling branch already surfaces a
	// failure; durability errors still pending on that path are
	// deliberately dominated (the vfs.SyncDir "sync error wins"
	// idiom), so their obligations end here.
	if _, ok := n.(*ast.ReturnStmt); ok && c.inPermittedSpan(n.Pos()) {
		return state{}
	}
	out := clone(s)

	var lhsIdents map[*ast.Ident]bool
	if as, ok := n.(*ast.AssignStmt); ok {
		lhsIdents = map[*ast.Ident]bool{}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				lhsIdents[id] = true
			}
		}
	}

	// Any identifier use outside a plain-assignment LHS examines the
	// value (conditions, returns, call args, closures all count).
	ast.Inspect(n, func(sub ast.Node) bool {
		id, ok := sub.(*ast.Ident)
		if !ok || lhsIdents[id] {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			delete(out, v)
		}
		return true
	})

	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := varOf(info, id)
			if v == nil {
				continue
			}
			if src, tracked := out[v]; tracked && report != nil {
				report(as.Pos(), "assignment overwrites the unexamined error from %s", src.text)
			}
			delete(out, v)
		}
		// Track fresh designated results (1:1 assignments only).
		if len(as.Rhs) == 1 && len(as.Lhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && designatedCall(info, call) {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if v := varOf(info, id); v != nil && isErrorType(info.TypeOf(as.Lhs[0])) {
						out[v] = source{pos: call.Pos(), text: types.ExprString(call)}
					}
				}
			}
		}
	}
	return out
}

func varOf(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}
