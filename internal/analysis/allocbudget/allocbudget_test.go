package allocbudget

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	// Real shapes: proc suffix present and absent, sub-benchmarks,
	// extra MB/s column, interleaved noise.
	out := `goos: linux
goarch: amd64
pkg: joinopt/internal/serve
BenchmarkOptimizeCacheHit 	    5796	    183379 ns/op	   90368 B/op	     402 allocs/op
BenchmarkOptimizeCacheHit-8 	    6000	    180000 ns/op	   90000 B/op	     400 allocs/op
BenchmarkAppend/nosync=false-4         	     200	       602.8 ns/op	     617 B/op	       3 allocs/op
BenchmarkWarmStartLoad   	     100	    101247 ns/op	 197.34 MB/s	   94712 B/op	    1419 allocs/op
BenchmarkNoMem 	    1000	    50 ns/op
PASS
ok  	joinopt/internal/serve	12.119s
`
	res, err := ParseBenchOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	// The -8 run overwrote the bare run (same normalized name, last wins).
	if r := res["BenchmarkOptimizeCacheHit"]; !r.HasAllocs || r.AllocsPerOp != 400 {
		t.Fatalf("OptimizeCacheHit = %+v, want 400 allocs (last result wins)", r)
	}
	if r := res["BenchmarkAppend/nosync=false"]; !r.HasAllocs || r.AllocsPerOp != 3 || r.BytesPerOp != 617 {
		t.Fatalf("sub-benchmark = %+v", r)
	}
	if r := res["BenchmarkWarmStartLoad"]; r.AllocsPerOp != 1419 {
		t.Fatalf("MB/s column broke parsing: %+v", r)
	}
	if r := res["BenchmarkNoMem"]; r.HasAllocs {
		t.Fatalf("no-benchmem line claims allocs: %+v", r)
	}
}

func TestParseBudgetsValidation(t *testing.T) {
	if _, err := ParseBudgets([]byte(`{"budgets":[]}`)); err == nil {
		t.Error("empty budgets accepted")
	}
	if _, err := ParseBudgets([]byte(`{"budgets":[{"bench":"BenchmarkX","max_allocs_per_op":1},{"bench":"BenchmarkX","max_allocs_per_op":2}]}`)); err == nil {
		t.Error("duplicate budget accepted")
	}
	f, err := ParseBudgets([]byte(`{"budgets":[{"bench":"BenchmarkX","max_allocs_per_op":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Budgets) != 1 || f.Budgets[0].MaxAllocsPerOp != 5 {
		t.Fatalf("round-trip: %+v", f)
	}
}

func TestCheck(t *testing.T) {
	f := &File{Budgets: []Budget{
		{Bench: "BenchmarkOK", MaxAllocsPerOp: 10},
		{Bench: "BenchmarkOver", MaxAllocsPerOp: 10},
		{Bench: "BenchmarkMissing", MaxAllocsPerOp: 10},
		{Bench: "BenchmarkNoMem", MaxAllocsPerOp: 10},
	}}
	res := map[string]BenchResult{
		"BenchmarkOK":       {Name: "BenchmarkOK", AllocsPerOp: 10, HasAllocs: true},
		"BenchmarkOver":     {Name: "BenchmarkOver", AllocsPerOp: 11, HasAllocs: true},
		"BenchmarkNoMem":    {Name: "BenchmarkNoMem"}, // ran without -benchmem
		"BenchmarkUnbudget": {Name: "BenchmarkUnbudget", AllocsPerOp: 999, HasAllocs: true},
	}
	vs := Check(f, res)
	if len(vs) != 3 {
		t.Fatalf("violations = %v, want 3 (over, missing, no-benchmem)", vs)
	}
	byBench := map[string]Violation{}
	for _, v := range vs {
		byBench[v.Bench] = v
	}
	if v := byBench["BenchmarkOver"]; v.Missing || v.Got != 11 {
		t.Fatalf("over: %+v", v)
	}
	if v := byBench["BenchmarkMissing"]; !v.Missing {
		t.Fatalf("missing: %+v", v)
	}
	if v := byBench["BenchmarkNoMem"]; !v.Missing {
		t.Fatalf("no-benchmem: %+v", v)
	}
}

func TestCheckEscapes(t *testing.T) {
	dir := t.TempDir()
	src := `package p

// hot is on the critical path.
//
//ljqlint:hotpath
func hot(n int) []int {
	s := make([]int, n)
	t := make([]int, n) //ljqlint:allow hotalloc -- measured and budgeted
	_ = t
	return s
}

func cold(n int) []int {
	return make([]int, n)
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := `p.go:7:11: make([]int, n) escapes to heap
p.go:8:11: make([]int, n) escapes to heap
p.go:14:13: make([]int, n) escapes to heap
p.go:6:10: n does not escape
`
	fs, err := CheckEscapes(strings.NewReader(diags), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly the unannotated hotpath escape", fs)
	}
	if fs[0].Func != "hot" || !strings.Contains(fs[0].Pos, "p.go:7") {
		t.Fatalf("finding = %+v", fs[0])
	}
}
