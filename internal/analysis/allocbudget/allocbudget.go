// Package allocbudget enforces the hot-path allocation contract from
// two directions:
//
//   - Bench mode parses `go test -bench -benchmem` output and compares
//     each benchmark's allocs/op against the checked-in ceilings in
//     ALLOC_BUDGETS.json. A budgeted benchmark that did not run is a
//     violation too — a gate that silently skips is no gate.
//   - Escape mode parses `go build -gcflags=-m` diagnostics and
//     reports any value that escapes to the heap inside a function
//     annotated //ljqlint:hotpath. This catches what the hotalloc
//     analyzer cannot see syntactically (escape analysis is a compiler
//     decision) and what benchmarks may not cover (rare branches).
//
// cmd/allocgate is the thin CLI over both; CI runs them as the
// bench-allocs job.
package allocbudget

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"joinopt/internal/analysis/hotalloc"
)

// Budget is one benchmark's allocation ceiling.
type Budget struct {
	// Bench is the benchmark name as `go test` prints it, without the
	// trailing -GOMAXPROCS suffix (sub-benchmarks keep their /part).
	Bench string `json:"bench"`
	// Pkg is the package the benchmark lives in (documentation and the
	// CI invocation; the gate matches on Bench alone).
	Pkg string `json:"pkg"`
	// MaxAllocsPerOp is the enforced ceiling.
	MaxAllocsPerOp int64 `json:"max_allocs_per_op"`
	// MeasuredAllocsPerOp records the honest measurement the ceiling
	// was derived from (documentation only).
	MeasuredAllocsPerOp int64 `json:"measured_allocs_per_op"`
	Note                string `json:"note,omitempty"`
}

// File is the ALLOC_BUDGETS.json schema.
type File struct {
	Description string   `json:"description"`
	Regenerate  string   `json:"regenerate,omitempty"`
	Date        string   `json:"date,omitempty"`
	Budgets     []Budget `json:"budgets"`
}

// ParseBudgets decodes and validates a budgets file.
func ParseBudgets(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("allocbudget: parse budgets: %w", err)
	}
	if len(f.Budgets) == 0 {
		return nil, fmt.Errorf("allocbudget: budgets file lists no budgets")
	}
	seen := map[string]bool{}
	for _, b := range f.Budgets {
		if b.Bench == "" {
			return nil, fmt.Errorf("allocbudget: budget with empty bench name")
		}
		if seen[b.Bench] {
			return nil, fmt.Errorf("allocbudget: duplicate budget for %s", b.Bench)
		}
		seen[b.Bench] = true
		if b.MaxAllocsPerOp < 0 {
			return nil, fmt.Errorf("allocbudget: %s: negative ceiling", b.Bench)
		}
	}
	return &f, nil
}

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	Name        string // normalized: -GOMAXPROCS suffix stripped
	NsPerOp     float64
	BytesPerOp  int64
	AllocsPerOp int64
	// HasAllocs records whether an allocs/op column was present —
	// without -benchmem (or b.ReportAllocs) there is nothing to gate.
	HasAllocs bool
}

// procSuffix matches the trailing -N GOMAXPROCS marker go test
// appends to benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// ParseBenchOutput scans `go test -bench` output for benchmark result
// lines. Unparseable lines (headers, PASS/ok trailers, logs) are
// skipped; a benchmark that ran more than once keeps its last result.
func ParseBenchOutput(r io.Reader) (map[string]BenchResult, error) {
	out := map[string]BenchResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		res, ok := parseBenchLine(sc.Text())
		if ok {
			out[res.Name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("allocbudget: read bench output: %w", err)
	}
	return out, nil
}

func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return BenchResult{}, false // not an iteration count
	}
	res := BenchResult{Name: procSuffix.ReplaceAllString(fields[0], "")}
	// The rest is value/unit pairs: 1234 ns/op, 56 B/op, 7 allocs/op,
	// 197.34 MB/s, ...
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return BenchResult{}, false
			}
			res.AllocsPerOp = n
			res.HasAllocs = true
		}
	}
	return res, true
}

// Violation is one budget the bench run failed to honor.
type Violation struct {
	Bench string
	Max   int64
	Got   int64 // meaningful only when !Missing
	// Missing: the budgeted benchmark produced no allocs/op figure
	// (did not run, or ran without -benchmem).
	Missing bool
}

func (v Violation) String() string {
	if v.Missing {
		return fmt.Sprintf("%s: budgeted but absent from the bench output (did it run with -benchmem?)", v.Bench)
	}
	return fmt.Sprintf("%s: %d allocs/op exceeds budget %d", v.Bench, v.Got, v.Max)
}

// Check compares results against budgets. Benchmarks without a budget
// are ignored; budgets without a result are violations.
func Check(f *File, results map[string]BenchResult) []Violation {
	var out []Violation
	for _, b := range f.Budgets {
		res, ok := results[b.Bench]
		if !ok || !res.HasAllocs {
			out = append(out, Violation{Bench: b.Bench, Max: b.MaxAllocsPerOp, Missing: true})
			continue
		}
		if res.AllocsPerOp > b.MaxAllocsPerOp {
			out = append(out, Violation{Bench: b.Bench, Max: b.MaxAllocsPerOp, Got: res.AllocsPerOp})
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Escape mode.

// EscapeFinding is one heap allocation the compiler reports inside a
// //ljqlint:hotpath function.
type EscapeFinding struct {
	Pos     string // file:line:col as the compiler printed it
	Func    string // the hotpath function the site is inside
	Message string
}

func (e EscapeFinding) String() string {
	return fmt.Sprintf("%s: %s inside //ljqlint:hotpath func %s", e.Pos, e.Message, e.Func)
}

// diagLine matches `file.go:line:col: message` compiler diagnostics.
var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// heapDiag reports whether a -gcflags=-m message denotes a heap
// allocation (as opposed to "does not escape" / inlining chatter).
func heapDiag(msg string) bool {
	return strings.Contains(msg, "escapes to heap") ||
		strings.Contains(msg, "moved to heap")
}

// CheckEscapes reads `go build -gcflags=-m` stderr and reports every
// heap-allocation diagnostic that lands inside a hotpath function.
// Paths in the diagnostics are resolved relative to root (the
// directory the build ran in). A site whose source line carries an
// inline `//ljqlint:allow hotalloc` directive is suppressed, matching
// the analyzer's suppression story.
func CheckEscapes(diagnostics io.Reader, root string) ([]EscapeFinding, error) {
	type site struct {
		pos, msg string
		line     int
	}
	byFile := map[string][]site{}
	sc := bufio.NewScanner(diagnostics)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := diagLine.FindStringSubmatch(sc.Text())
		if m == nil || !heapDiag(m[4]) {
			continue
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		byFile[m[1]] = append(byFile[m[1]], site{pos: m[1] + ":" + m[2] + ":" + m[3], msg: m[4], line: line})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("allocbudget: read diagnostics: %w", err)
	}

	var out []EscapeFinding
	for file, sites := range byFile {
		path := file
		if !filepath.IsAbs(path) {
			path = filepath.Join(root, file)
		}
		funcs, lines, err := hotpathRanges(path)
		if err != nil {
			// A diagnostic for a file outside the tree (or generated
			// and gone) cannot hide a hotpath violation in the tree.
			continue
		}
		for _, s := range sites {
			name, ok := enclosing(funcs, s.line)
			if !ok {
				continue
			}
			if lineAllows(lines, s.line) {
				continue
			}
			out = append(out, EscapeFinding{Pos: s.pos, Func: name, Message: s.msg})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// funcRange is a hotpath function's line span.
type funcRange struct {
	name       string
	start, end int
}

// hotpathRanges parses one source file and returns the line ranges of
// its //ljqlint:hotpath functions plus the file's source lines (for
// inline-allow checks).
func hotpathRanges(path string) ([]funcRange, []string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, nil, err
	}
	var ranges []funcRange
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || !hotalloc.IsHotpath(fd) {
			continue
		}
		ranges = append(ranges, funcRange{
			name:  fd.Name.Name,
			start: fset.Position(fd.Pos()).Line,
			end:   fset.Position(fd.End()).Line,
		})
	}
	return ranges, strings.Split(string(src), "\n"), nil
}

func enclosing(ranges []funcRange, line int) (string, bool) {
	for _, r := range ranges {
		if line >= r.start && line <= r.end {
			return r.name, true
		}
	}
	return "", false
}

func lineAllows(lines []string, line int) bool {
	if line < 1 || line > len(lines) {
		return false
	}
	rest := lines[line-1]
	i := strings.Index(rest, "//ljqlint:allow")
	if i < 0 {
		return false
	}
	return strings.Contains(rest[i:], "hotalloc")
}
