// Package panicguard defines an analyzer preserving PR 1's isolation
// contract: every goroutine launched in the optimizer's service layer
// must install a recover barrier.
//
// A panic in a goroutine with no deferred recover kills the whole
// process — portfolio members, the experiment harness's parallel
// tasks, everything. PR 1 established the contract (each portfolio
// member runs behind `defer func(){ if r := recover(); ... }()`); this
// analyzer keeps it true as the codebase grows. For every `go`
// statement it requires that the launched function — a function
// literal, or a same-package named function — lexically contains a
// deferred recover: a `defer` whose callee is a function literal
// calling the recover built-in, or a same-package named function that
// does.
//
// Goroutines whose target the analyzer cannot see into (method values
// from other packages, function-typed variables) are flagged too: an
// unverifiable barrier is treated as a missing one. Wrap the call in a
// literal with its own recover, or annotate
// //ljqlint:allow panicguard -- <who recovers and where>.
package panicguard

import (
	"go/ast"
	"go/types"

	"joinopt/internal/analysis"
)

// Analyzer is the panicguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "panicguard",
	Doc:  "goroutines in optimizer service packages must install a deferred recover barrier",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Index same-package function declarations by object, so `go
	// helper()` and `defer cleanup()` can be resolved to bodies.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, decls, gs)
			return true
		})
	}
	return nil
}

func checkGo(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, gs *ast.GoStmt) {
	body := launchedBody(pass, decls, gs.Call.Fun)
	if body == nil {
		pass.Reportf(gs.Pos(),
			"cannot verify a recover barrier in this goroutine's target; launch a function literal with `defer func(){ if r := recover(); ... }()` (or annotate //ljqlint:allow panicguard -- <who recovers>)")
		return
	}
	if hasDeferredRecover(pass, decls, body) {
		return
	}
	pass.Reportf(gs.Pos(),
		"goroutine has no deferred recover barrier; a panic here kills the process — the service layer's isolation contract requires `defer func(){ if r := recover(); ... }()`")
}

// launchedBody resolves the body of the function started by a go
// statement, or nil when it is not visible in this package.
func launchedBody(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, fun ast.Expr) *ast.BlockStmt {
	switch x := ast.Unparen(fun).(type) {
	case *ast.FuncLit:
		return x.Body
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			if fd, ok := decls[obj]; ok {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn := analysis.FuncOf(pass.TypesInfo, x); fn != nil {
			if fd, ok := decls[fn]; ok {
				return fd.Body
			}
		}
	}
	return nil
}

// hasDeferredRecover reports whether body contains a defer whose
// target (a literal, or a same-package function) calls recover.
func hasDeferredRecover(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch fn := ast.Unparen(ds.Call.Fun).(type) {
		case *ast.FuncLit:
			if callsRecover(pass, fn.Body) {
				found = true
			}
		default:
			if f := analysis.FuncOf(pass.TypesInfo, ds.Call.Fun); f != nil {
				if fd, ok := decls[f]; ok && callsRecover(pass, fd.Body) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// callsRecover reports whether the subtree calls the recover built-in.
func callsRecover(pass *analysis.Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
