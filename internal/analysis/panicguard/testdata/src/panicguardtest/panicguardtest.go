// Package panicguardtest exercises the panicguard analyzer.
package panicguardtest

import "sync"

// unguarded launches a bare goroutine: flagged.
func unguarded(work func()) {
	go work() // want `cannot verify a recover barrier`
}

// unguardedLit has a visible body but no barrier: flagged.
func unguardedLit(wg *sync.WaitGroup) {
	go func() { // want `goroutine has no deferred recover barrier`
		defer wg.Done()
		doWork()
	}()
}

// guarded installs the canonical barrier: ok.
func guarded(wg *sync.WaitGroup, errs chan<- any) {
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				errs <- r
			}
		}()
		doWork()
	}()
}

// barrier is a shared recover helper.
func barrier() {
	if r := recover(); r != nil {
		_ = r
	}
}

// guardedByHelper defers a same-package recover helper: ok.
func guardedByHelper() {
	go func() {
		defer barrier()
		doWork()
	}()
}

// namedWorker contains its own barrier, launched by name: ok.
func namedWorker() {
	defer barrier()
	doWork()
}

func launchNamed() {
	go namedWorker()
}

// namedUnguarded has no barrier: flagged at the launch site.
func namedUnguarded() { doWork() }

func launchNamedUnguarded() {
	go namedUnguarded() // want `goroutine has no deferred recover barrier`
}

// acknowledged documents an external barrier.
func acknowledged(run func()) {
	go run() //ljqlint:allow panicguard -- callee installs its own barrier, verified in its package
}

func doWork() {}
