package panicguard_test

import (
	"testing"

	"joinopt/internal/analysis/analysistest"
	"joinopt/internal/analysis/panicguard"
)

func TestPanicGuard(t *testing.T) {
	analysistest.Run(t, "testdata", panicguard.Analyzer, "panicguardtest")
}
