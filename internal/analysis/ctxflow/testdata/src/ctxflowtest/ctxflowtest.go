// Package ctxflowtest exercises the ctxflow analyzer.
package ctxflowtest

import "context"

func worker(ctx context.Context) error { return ctx.Err() }

// severed checks its own ctx but mints a fresh one for the callee:
// the call below it is uncancellable. Flagged.
func severed(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return worker(context.Background()) // want `context.Background severs the cancellation chain`
}

// minted defines a new context from scratch: flagged (`:=` is not the
// nil-guard idiom).
func minted() error {
	ctx := context.Background() // want `context.Background severs the cancellation chain`
	return worker(ctx)
}

// todoCall is equally severed: flagged.
func todoCall() error {
	return worker(context.TODO()) // want `context.TODO severs the cancellation chain`
}

// nilGuard re-seats an explicitly nil ctx parameter: allowed.
func nilGuard(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return worker(ctx)
}

// compatWrapper starts a fresh chain on purpose and says so.
func compatWrapper() error {
	return worker(context.Background()) //ljqlint:allow ctxflow -- public no-context compatibility entry point
}

// propagated threads ctx through: ok.
func propagated(ctx context.Context) error {
	return worker(ctx)
}

// dropped accepts a ctx and ignores it: flagged.
func dropped(ctx context.Context, n int) int { // want `context parameter ctx is never used`
	return n * 2
}

// declaredDrop renames the parameter _: ok.
func declaredDrop(_ context.Context, n int) int { return n * 2 }

// usedInClosure counts as use: ok.
func usedInClosure(ctx context.Context) func() error {
	return func() error { return worker(ctx) }
}
