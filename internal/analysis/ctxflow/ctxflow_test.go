package ctxflow_test

import (
	"testing"

	"joinopt/internal/analysis/analysistest"
	"joinopt/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxflowtest")
}
