// Package ctxflow defines an analyzer enforcing PR 1's cancellation
// contract: context flows down the call tree, it is never minted
// mid-flight.
//
// The anytime optimizer stops because a context reached the budget
// (cost.Budget.WithContext). A context.Background() in library code
// severs that chain: everything below it becomes uncancellable and the
// service layer's deadline silently stops propagating. The analyzer
// flags:
//
//   - any call to context.Background() or context.TODO() in a checked
//     package, except the nil-normalization idiom `ctx =
//     context.Background()` (re-seating an explicitly nil context
//     parameter keeps the API tolerant without breaking a live chain).
//     Public compatibility wrappers (Run → RunContext) that genuinely
//     start a fresh chain annotate with //ljqlint:allow ctxflow;
//   - a context.Context parameter that the function body never uses:
//     accepting a context and dropping it is the same severed chain
//     wearing a contract-shaped costume.
package ctxflow

import (
	"go/ast"
	"go/types"

	"joinopt/internal/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "contexts must propagate: no context.Background/TODO in library code, no dropped ctx parameters",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		checkBackgroundCalls(pass, file)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkUnusedCtxParam(pass, fd)
			}
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkBackgroundCalls flags context.Background/TODO calls outside the
// nil-normalization idiom.
func checkBackgroundCalls(pass *analysis.Pass, file *ast.File) {
	// First collect the allowed positions: calls appearing as the sole
	// RHS of an assignment to an *existing* context variable
	// (`ctx = context.Background()`, the nil-guard idiom). A fresh
	// definition (`ctx := context.Background()`) is not exempt.
	allowed := map[*ast.CallExpr]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id] // Uses, not Defs: must pre-exist
		if obj == nil || !isContextType(obj.Type()) {
			return true
		}
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			allowed[call] = true
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if !analysis.IsPkgFunc(fn, "context", "Background") && !analysis.IsPkgFunc(fn, "context", "TODO") {
			return true
		}
		if allowed[call] {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s severs the cancellation chain; thread the caller's ctx through (compat wrappers annotate //ljqlint:allow ctxflow -- <why a fresh chain>)",
			fn.Name())
		return true
	})
}

// checkUnusedCtxParam flags ctx parameters the body never reads.
func checkUnusedCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if !usedIn(pass, fd.Body, obj) {
				pass.Reportf(name.Pos(),
					"context parameter %s is never used: propagate it into the calls below or rename it _ to declare the drop",
					name.Name)
			}
		}
	}
}

func usedIn(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
