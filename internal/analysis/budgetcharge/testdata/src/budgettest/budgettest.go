// Package budgettest exercises the budgetcharge analyzer: metered
// work (cost.Model.JoinCost, estimate.Prefix.Extend) must be
// accompanied by a Budget.Charge in the same top-level function.
package budgettest

import (
	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
)

// unmeteredModel prices a join without ever charging: flagged.
func unmeteredModel(m cost.Model, b *cost.Budget) float64 {
	return m.JoinCost(100, 10, 1000) // want `unmeteredModel performs metered work \(cost.JoinCost\) but never charges the budget`
}

// unmeteredConcrete bypasses the interface; still flagged.
func unmeteredConcrete(m *cost.MemoryModel) float64 {
	return m.JoinCost(100, 10, 1000) // want `unmeteredConcrete performs metered work \(cost.JoinCost\) but never charges the budget`
}

// unmeteredExtend extends an estimation prefix without charging.
func unmeteredExtend(p *estimate.Prefix, r catalog.RelID) float64 {
	_, _, result := p.Extend(r) // want `unmeteredExtend performs metered work \(estimate.Extend\) but never charges the budget`
	return result
}

// metered charges in the same function: ok.
func metered(m cost.Model, b *cost.Budget) float64 {
	b.Charge(1)
	return m.JoinCost(100, 10, 1000)
}

// meteredInClosure does the work inside a closure that charges; the
// lexical containment rule accepts it.
func meteredInClosure(m cost.Model, b *cost.Budget) float64 {
	total := 0.0
	f := func() {
		total += m.JoinCost(100, 10, 1000)
		b.Charge(1)
	}
	f()
	return total
}

// meteredByCallback passes Budget.Charge as a callback — the metering
// reference counts even without a direct call.
func meteredByCallback(m cost.Model, b *cost.Budget, apply func(func(int64))) float64 {
	apply(b.Charge)
	return m.JoinCost(100, 10, 1000)
}

// describeOnly prices a plan outside the optimization loop and says so.
//
//ljqlint:allow budgetcharge -- explain path, not part of the search loop
func describeOnly(m cost.Model) float64 {
	return m.JoinCost(100, 10, 1000)
}

func lineDirective(m cost.Model) float64 {
	return m.JoinCost(2, 2, 4) //ljqlint:allow budgetcharge -- test-only pricing
}

// noWork never performs metered work: nothing to report.
func noWork(b *cost.Budget) { b.Charge(0) }
