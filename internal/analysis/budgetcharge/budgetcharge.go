// Package budgetcharge defines an analyzer enforcing the optimizer's
// work-accounting invariant: every unit of cost-evaluation work is
// debited against the shared cost.Budget.
//
// The paper's experimental methodology compares strategies at equal
// *work*, with budgets proportional to N² substituting for its
// wall-clock limits. That comparison is meaningless if any code path
// evaluates join costs or extends size-estimation prefixes without
// charging the meter: the unmetered strategy looks faster than it is,
// silently, on every run. The analyzer makes the discipline mechanical:
//
//   - a call to a cost-model JoinCost method (package internal/cost),
//     or to (*estimate.Prefix).Extend (the per-join size-estimation
//     step), is "metered work";
//   - every top-level function whose body performs metered work must
//     also charge the budget — contain a call to, or reference of,
//     (*cost.Budget).Charge — anywhere in the same function (closures
//     inside the function count, and passing budget.Charge as a
//     callback counts as metering).
//
// Functions that deliberately price plans outside the optimization
// loop (plan explainers, assembly-time sizing) acknowledge it with
// an //ljqlint:allow budgetcharge directive carrying a justification.
//
// The check is intentionally intra-function and lexical: it cannot
// prove the charge amount is *correct*, only that the author thought
// about metering at all. Experience (PR 1's hand-found accounting
// bugs) says that is the failure mode worth gating.
package budgetcharge

import (
	"go/ast"
	"go/types"

	"joinopt/internal/analysis"
)

const (
	costPkg     = "joinopt/internal/cost"
	estimatePkg = "joinopt/internal/estimate"
)

// Analyzer is the budgetcharge analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "budgetcharge",
	Doc:  "cost-model and size-estimation work must debit the shared cost.Budget",
	Run:  run,
}

// isMeteredWork reports whether fn is a call target that performs
// budget-metered work.
func isMeteredWork(fn *types.Func) bool {
	// Any JoinCost method of the cost package: the cost.Model interface
	// method and every concrete model's implementation.
	if analysis.IsPkgFunc(fn, costPkg, "JoinCost") {
		return true
	}
	// The per-join size-estimation step.
	return analysis.IsPkgFunc(fn, estimatePkg, "Extend")
}

// isCharge reports whether fn is (*cost.Budget).Charge.
func isCharge(fn *types.Func) bool {
	return analysis.IsPkgFunc(fn, costPkg, "Charge")
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var metered []*ast.CallExpr
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := analysis.Callee(pass.TypesInfo, call); fn != nil && isMeteredWork(fn) {
					metered = append(metered, call)
				}
				return true
			})
			if len(metered) == 0 {
				continue
			}
			if analysis.ContainsCallTo(pass.TypesInfo, fd.Body, isCharge) {
				continue
			}
			for _, call := range metered {
				fn := analysis.Callee(pass.TypesInfo, call)
				pass.Reportf(call.Pos(),
					"%s performs metered work (%s.%s) but never charges the budget; call Budget.Charge or annotate with //ljqlint:allow budgetcharge -- <why>",
					funcLabel(fd), fn.Pkg().Name(), fn.Name())
			}
		}
	}
	return nil
}

func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if t := recvTypeName(fd.Recv.List[0].Type); t != "" {
			return t + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(x.X)
	case *ast.IndexListExpr:
		return recvTypeName(x.X)
	}
	return ""
}
