package budgetcharge_test

import (
	"testing"

	"joinopt/internal/analysis/analysistest"
	"joinopt/internal/analysis/budgetcharge"
)

func TestBudgetCharge(t *testing.T) {
	analysistest.Run(t, "testdata", budgetcharge.Analyzer, "budgettest")
}
