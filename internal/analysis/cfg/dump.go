package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Dump renders g as deterministic text for golden tests: one stanza
// per block in index order, each node printed as source, each edge as
// `-> target [cond=..., branch]`.
func Dump(g *CFG, fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s", b.Index, b.Label)
		switch {
		case b == g.Entry:
			sb.WriteString(" (entry)")
		case b == g.Exit:
			sb.WriteString(" (exit)")
		case b == g.Panic:
			sb.WriteString(" (panic)")
		}
		if b.Kind == SelectHead {
			sb.WriteString(" (select)")
		}
		sb.WriteString("\n")
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, "  %s\n", nodeText(n, fset))
		}
		for _, e := range b.Succs {
			if e.Cond != nil {
				fmt.Fprintf(&sb, "  -> b%d [%s=%v]\n", e.To.Index, nodeText(e.Cond, fset), e.Branch)
			} else {
				fmt.Fprintf(&sb, "  -> b%d\n", e.To.Index)
			}
		}
	}
	return sb.String()
}

func nodeText(n ast.Node, fset *token.FileSet) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := buf.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " ..."
	}
	return s
}
