// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and runs forward dataflow analyses over them.
//
// The graph is deliberately small: basic blocks hold "atomic" nodes
// (simple statements and the condition expressions of branches) in
// execution order, and compound statements (if/for/switch/select) are
// lowered into blocks and edges. Two synthetic blocks terminate every
// graph: Exit (normal return) and Panic (explicit panic() calls).
// Deferred calls are lowered into a shared "defers" epilogue block
// that every return and panic path flows through, in reverse lexical
// order — an approximation (a defer inside an if is treated as always
// registered) that errs toward believing deferred cleanup runs, which
// is the useful direction for must-resolve analyses.
//
// Edges carry the branch condition that guards them (Cond + Branch),
// which is what lets analyzers like slotresolve be path-sensitive
// about `if !b.Allow() { ... }`.
//
// Function literals are NOT descended into: a FuncLit gets its own CFG
// (call Build on its body); in the enclosing graph it is just an
// expression inside whatever node contains it.
package cfg

import (
	"go/ast"
	"go/token"
)

// Edge is one control-flow edge. When Cond is non-nil the edge is
// taken only when Cond evaluates to Branch.
type Edge struct {
	To     *Block
	Cond   ast.Expr // branch condition guarding this edge, or nil
	Branch bool     // value Cond must have for the edge to be taken
}

// Kind classifies a block for analyzers that care about the compound
// statement a block was lowered from.
type Kind int

const (
	Plain Kind = iota
	// SelectHead is the decision point of a select statement; Stmt is
	// the *ast.SelectStmt. A select without a default clause is a
	// blocking point.
	SelectHead
	// DeferEpilogue holds the function's deferred calls in reverse
	// lexical order; every return and panic path runs through it.
	DeferEpilogue
	// RangeHead is the decision point of a range loop; Stmt is the
	// *ast.RangeStmt and the block's single node is the ranged
	// expression (ranging a channel is a blocking receive).
	RangeHead
)

// Block is one basic block.
type Block struct {
	Index int
	Label string // stable human-readable label for dumps
	Kind  Kind
	Stmt  ast.Stmt   // originating compound statement (select), or nil
	Nodes []ast.Node // atomic statements/exprs in execution order
	Succs []Edge
	Preds []*Block
}

func (b *Block) addNode(n ast.Node) { b.Nodes = append(b.Nodes, n) }

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // Blocks[0] is Entry
	Entry  *Block
	Exit   *Block // normal-return exit
	Panic  *Block // reached from explicit panic() calls (may have no preds)
	// Defers lists every defer statement seen, in lexical order.
	Defers []*ast.DeferStmt
}

// Build constructs the CFG of body. body may be nil (declared-only
// functions), in which case the graph is Entry→Exit.
func Build(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cfg.Panic = b.newBlock("panic")
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.cfg.Exit)
	b.resolveGotos()
	b.wireDefers()
	b.wirePreds()
	return b.cfg
}

type loopFrame struct {
	label    string // "" for unlabeled
	breakTo  *Block
	contTo   *Block // nil for switch/select frames
	isSwitch bool
}

type gotoFix struct {
	from  *Block
	label string
}

type builder struct {
	cfg     *CFG
	cur     *Block // nil while the current point is unreachable
	frames  []loopFrame
	gotos   []gotoFix
	labeled map[string]*Block // label → first block of labeled stmt
	// pendingLabel is set between seeing `L:` and building the labeled
	// statement, so loops register their frames under it.
	pendingLabel string
}

func (b *builder) newBlock(label string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Label: label}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge adds from→to with no condition.
func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, Edge{To: to})
}

// condEdge adds from→to guarded by cond==branch.
func (b *builder) condEdge(from, to *Block, cond ast.Expr, branch bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Branch: branch})
}

// jump terminates the current block with an unconditional edge to to
// and marks the current point unreachable.
func (b *builder) jump(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to)
	}
	b.cur = nil
}

// start makes blk the current block, creating a fresh unreachable
// block if needed so dead statements still get nodes.
func (b *builder) start(blk *Block) { b.cur = blk }

// ensure returns a usable current block (statements after return/panic
// land in an unreachable block with no predecessors).
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall reports whether e is a call to the predeclared panic.
func isPanicCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return nil, false
	}
	// Shadowing of the builtin is vanishingly rare in this tree; the
	// purely syntactic check keeps the builder type-info-free.
	return call, true
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ExprStmt:
		if call, ok := isPanicCall(s.X); ok {
			b.ensure().addNode(call)
			b.jump(b.cfg.Panic)
			return
		}
		b.ensure().addNode(s)
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.EmptyStmt:
		b.ensure().addNode(s)
	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.ensure().addNode(s)
	case *ast.ReturnStmt:
		b.ensure().addNode(s)
		b.jump(b.cfg.Exit)
	case *ast.LabeledStmt:
		blk := b.newBlock("label." + s.Label.Name)
		b.jump(blk)
		b.start(blk)
		if b.labeled == nil {
			b.labeled = make(map[string]*Block)
		}
		b.labeled[s.Label.Name] = blk
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		// Anything unrecognized is treated as a straight-line node.
		b.ensure().addNode(s)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.jump(f.breakTo)
				return
			}
		}
		b.cur = nil // malformed; treat as terminating
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.contTo == nil {
				continue // switch/select frames are not continue targets
			}
			if label == "" || f.label == label {
				b.jump(f.contTo)
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		if b.cur != nil {
			b.gotos = append(b.gotos, gotoFix{from: b.cur, label: label})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled structurally in switchStmt via clause ordering; a
		// stray fallthrough just ends the block.
		b.cur = nil
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.ensure().addNode(s.Init)
	}
	head := b.ensure()
	head.addNode(s.Cond)
	thenBlk := b.newBlock("if.then")
	var elseBlk *Block
	join := b.newBlock("if.join")
	b.condEdge(head, thenBlk, s.Cond, true)
	if s.Else != nil {
		elseBlk = b.newBlock("if.else")
		b.condEdge(head, elseBlk, s.Cond, false)
	} else {
		b.condEdge(head, join, s.Cond, false)
	}
	b.cur = nil
	b.start(thenBlk)
	b.stmt(s.Body)
	b.jump(join)
	if s.Else != nil {
		b.start(elseBlk)
		b.stmt(s.Else)
		b.jump(join)
	}
	b.start(join)
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.ensure().addNode(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	exit := b.newBlock("for.exit")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.jump(head)
	b.start(head)
	if s.Cond != nil {
		head.addNode(s.Cond)
		b.condEdge(head, body, s.Cond, true)
		b.condEdge(head, exit, s.Cond, false)
	} else {
		b.edge(head, body)
	}
	b.cur = nil

	b.pushFrame(loopFrame{label: b.takeLabel(), breakTo: exit, contTo: post})
	b.start(body)
	b.stmt(s.Body)
	b.jump(post)
	b.popFrame()

	if s.Post != nil {
		b.start(post)
		post.addNode(s.Post)
		b.jump(head)
	}
	b.start(exit)
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	exit := b.newBlock("range.exit")
	b.ensure()
	b.jump(head)
	b.start(head)
	// Only the ranged expression is the head's node (the body has its
	// own blocks); Kind+Stmt let analyzers see it is a range loop.
	head.Kind = RangeHead
	head.Stmt = s
	head.addNode(s.X)
	b.edge(head, body)
	b.edge(head, exit)
	b.cur = nil

	b.pushFrame(loopFrame{label: b.takeLabel(), breakTo: exit, contTo: head})
	b.start(body)
	b.stmt(s.Body)
	b.jump(head)
	b.popFrame()

	b.start(exit)
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.ensure().addNode(s.Init)
	}
	if s.Tag != nil {
		b.ensure().addNode(s.Tag)
	}
	head := b.ensure()
	join := b.newBlock("switch.join")
	b.pushFrame(loopFrame{label: b.takeLabel(), breakTo: join, isSwitch: true})

	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		name := "case"
		if c.List == nil {
			name = "default"
			hasDefault = true
		}
		blocks[i] = b.newBlock("switch." + name)
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, join)
	}
	b.cur = nil
	for i, c := range clauses {
		b.start(blocks[i])
		for _, e := range c.List {
			blocks[i].addNode(e)
		}
		fallsThrough := false
		for _, st := range c.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				break
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(join)
		}
	}
	b.popFrame()
	b.start(join)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.ensure().addNode(s.Init)
	}
	b.ensure().addNode(s.Assign)
	head := b.ensure()
	join := b.newBlock("typeswitch.join")
	b.pushFrame(loopFrame{label: b.takeLabel(), breakTo: join, isSwitch: true})
	hasDefault := false
	for _, cs := range s.Body.List {
		c := cs.(*ast.CaseClause)
		name := "case"
		if c.List == nil {
			name = "default"
			hasDefault = true
		}
		blk := b.newBlock("typeswitch." + name)
		b.edge(head, blk)
		b.cur = nil
		b.start(blk)
		b.stmtList(c.Body)
		b.jump(join)
	}
	if !hasDefault {
		b.edge(head, join)
	}
	b.popFrame()
	b.start(join)
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.ensure()
	// Mark the decision point so analyzers can see a blocking select
	// (no default clause) with one glance at the block.
	selHead := b.newBlock("select.head")
	selHead.Kind = SelectHead
	selHead.Stmt = s
	b.edge(head, selHead)
	join := b.newBlock("select.join")
	b.pushFrame(loopFrame{label: b.takeLabel(), breakTo: join, isSwitch: true})
	for _, cs := range s.Body.List {
		c := cs.(*ast.CommClause)
		name := "comm"
		if c.Comm == nil {
			name = "default"
		}
		blk := b.newBlock("select." + name)
		b.edge(selHead, blk)
		b.cur = nil
		b.start(blk)
		if c.Comm != nil {
			blk.addNode(c.Comm)
		}
		b.stmtList(c.Body)
		b.jump(join)
	}
	if len(s.Body.List) == 0 {
		// `select {}` blocks forever: no successors out of the head.
		b.cur = nil
		b.start(join)
		b.popFrame()
		return
	}
	b.popFrame()
	b.start(join)
}

func (b *builder) pushFrame(f loopFrame) { b.frames = append(b.frames, f) }
func (b *builder) popFrame()             { b.frames = b.frames[:len(b.frames)-1] }

// takeLabel consumes the pending statement label, if any.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if to, ok := b.labeled[g.label]; ok {
			b.edge(g.from, to)
		}
	}
}

// wireDefers lowers deferred calls into an epilogue block that every
// Exit and Panic path runs through. Deferred calls appear in reverse
// lexical order (last-registered runs first).
func (b *builder) wireDefers() {
	if len(b.cfg.Defers) == 0 {
		return
	}
	ep := b.newBlock("defers")
	ep.Kind = DeferEpilogue
	for i := len(b.cfg.Defers) - 1; i >= 0; i-- {
		ep.addNode(b.cfg.Defers[i].Call)
	}
	// Re-point every edge into Exit or Panic through the epilogue.
	for _, blk := range b.cfg.Blocks {
		if blk == ep {
			continue
		}
		for i := range blk.Succs {
			if to := blk.Succs[i].To; to == b.cfg.Exit || to == b.cfg.Panic {
				blk.Succs[i].To = ep
			}
		}
	}
	b.edge(ep, b.cfg.Exit)
	b.edge(ep, b.cfg.Panic)
}

func (b *builder) wirePreds() {
	for _, blk := range b.cfg.Blocks {
		seen := make(map[*Block]bool)
		for _, e := range blk.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				e.To.Preds = append(e.To.Preds, blk)
			}
		}
	}
}
