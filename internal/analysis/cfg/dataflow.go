package cfg

import "go/ast"

// Problem is a forward dataflow problem over one CFG. S is the
// abstract state; implementations must treat states as values (Transfer
// and TransferEdge return a possibly-new state and must not mutate a
// shared one that Merge later reads).
type Problem[S any] struct {
	// Entry is the state at function entry.
	Entry S
	// Bottom produces the "no information yet" state used for blocks
	// not reached by any path so far (unreachable blocks keep it).
	Bottom func() S
	// Transfer applies one atomic node.
	Transfer func(n ast.Node, s S) S
	// TransferEdge refines the state along a conditional edge (nil = identity).
	TransferEdge func(e Edge, s S) S
	// Merge joins the states of two incoming paths.
	Merge func(a, b S) S
	// Equal reports state equality; the fixpoint loop stops when every
	// block's input state is stable.
	Equal func(a, b S) bool
}

// Result holds the per-block fixpoint states: In is the state at block
// entry, Out after all its nodes. Re-run Transfer from In to recover
// intermediate states when reporting at a specific node.
type Result[S any] struct {
	In, Out map[*Block]S
}

// maxPasses caps fixpoint iteration as a defensive bound; with a
// finite lattice and monotone transfer it is never reached.
const maxPasses = 64

// Forward solves p over g with a round-robin worklist and returns the
// fixpoint states.
func Forward[S any](g *CFG, p Problem[S]) *Result[S] {
	res := &Result[S]{
		In:  make(map[*Block]S, len(g.Blocks)),
		Out: make(map[*Block]S, len(g.Blocks)),
	}
	reached := make(map[*Block]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		res.In[b] = p.Bottom()
		res.Out[b] = p.Bottom()
	}
	res.In[g.Entry] = p.Entry
	reached[g.Entry] = true

	transferBlock := func(b *Block) S {
		s := res.In[b]
		for _, n := range b.Nodes {
			s = p.Transfer(n, s)
		}
		return s
	}

	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, b := range g.Blocks {
			if !reached[b] {
				continue
			}
			out := transferBlock(b)
			if !p.Equal(out, res.Out[b]) {
				res.Out[b] = out
				changed = true
			}
			for _, e := range b.Succs {
				s := out
				if p.TransferEdge != nil {
					s = p.TransferEdge(e, s)
				}
				if !reached[e.To] {
					reached[e.To] = true
					res.In[e.To] = s
					changed = true
					continue
				}
				merged := p.Merge(res.In[e.To], s)
				if !p.Equal(merged, res.In[e.To]) {
					res.In[e.To] = merged
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return res
}
