package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src (a complete function declaration) and builds
// the CFG of its body.
func buildFunc(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package x\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return Build(fd.Body), fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

func checkGolden(t *testing.T, got, want string) {
	t.Helper()
	got = strings.TrimSpace(got)
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("CFG dump mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestDumpDefer(t *testing.T) {
	g, fset := buildFunc(t, `
func f(mu sync.Locker, x int) int {
	mu.Lock()
	defer mu.Unlock()
	if x > 0 {
		return x
	}
	return -x
}`)
	checkGolden(t, Dump(g, fset), `
b0 entry (entry)
  mu.Lock()
  defer mu.Unlock()
  x > 0
  -> b3 [x > 0=true]
  -> b4 [x > 0=false]
b1 exit (exit)
b2 panic (panic)
b3 if.then
  return x
  -> b5
b4 if.join
  return -x
  -> b5
b5 defers
  mu.Unlock()
  -> b1
  -> b2
`)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
}

func TestDumpPanic(t *testing.T) {
	g, fset := buildFunc(t, `
func f(ok bool) {
	if !ok {
		panic("bad")
	}
	work()
}`)
	checkGolden(t, Dump(g, fset), `
b0 entry (entry)
  !ok
  -> b3 [!ok=true]
  -> b4 [!ok=false]
b1 exit (exit)
b2 panic (panic)
b3 if.then
  panic("bad")
  -> b2
b4 if.join
  work()
  -> b1
`)
	if len(g.Panic.Preds) != 1 {
		t.Fatalf("panic preds = %d, want 1", len(g.Panic.Preds))
	}
}

func TestDumpLabeledBreak(t *testing.T) {
	g, fset := buildFunc(t, `
func f(rows [][]int) int {
outer:
	for _, r := range rows {
		for _, v := range r {
			if v < 0 {
				break outer
			}
		}
	}
	return 0
}`)
	checkGolden(t, Dump(g, fset), `
b0 entry (entry)
  -> b3
b1 exit (exit)
b2 panic (panic)
b3 label.outer
  -> b4
b4 range.head
  rows
  -> b5
  -> b6
b5 range.body
  -> b7
b6 range.exit
  return 0
  -> b1
b7 range.head
  r
  -> b8
  -> b9
b8 range.body
  v < 0
  -> b10 [v < 0=true]
  -> b11 [v < 0=false]
b9 range.exit
  -> b4
b10 if.then
  -> b6
b11 if.join
  -> b7
`)
}

func TestDumpSelect(t *testing.T) {
	g, fset := buildFunc(t, `
func f(ch chan int, done chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}`)
	checkGolden(t, Dump(g, fset), `
b0 entry (entry)
  -> b3
b1 exit (exit)
b2 panic (panic)
b3 select.head (select)
  -> b5
  -> b6
b4 select.join
  -> b1
b5 select.comm
  v := <-ch
  return v
  -> b1
b6 select.comm
  <-done
  return 0
  -> b1
`)
	// The head must expose the originating select so analyzers can
	// check for a default clause.
	var sel *Block
	for _, b := range g.Blocks {
		if b.Kind == SelectHead {
			sel = b
		}
	}
	if sel == nil || sel.Stmt == nil {
		t.Fatal("no SelectHead block with Stmt")
	}
	if _, ok := sel.Stmt.(*ast.SelectStmt); !ok {
		t.Fatalf("SelectHead.Stmt = %T, want *ast.SelectStmt", sel.Stmt)
	}
}

func TestDumpSwitchFallthrough(t *testing.T) {
	g, _ := buildFunc(t, `
func f(x int) int {
	switch x {
	case 1:
		x++
		fallthrough
	case 2:
		x += 2
	default:
		x = 0
	}
	return x
}`)
	// The case-1 block must flow into the case-2 block, not the join.
	var c1, c2 *Block
	for _, b := range g.Blocks {
		if b.Label == "switch.case" {
			if c1 == nil {
				c1 = b
			} else if c2 == nil {
				c2 = b
			}
		}
	}
	if c1 == nil || c2 == nil {
		t.Fatal("missing case blocks")
	}
	found := false
	for _, e := range c1.Succs {
		if e.To == c2 {
			found = true
		}
	}
	if !found {
		t.Fatal("fallthrough edge from case 1 to case 2 missing")
	}
}

// TestForwardReachingMust checks the dataflow engine with a tiny
// must-analysis: "x definitely assigned" through branches and loops.
func TestForwardReachingMust(t *testing.T) {
	g, _ := buildFunc(t, `
func f(c bool) {
	if c {
		x := 1
		_ = x
	}
	use()
}`)
	// State: set of assigned variable names; merge = intersection
	// (must), so x is NOT definitely assigned at exit.
	type state = map[string]bool
	prob := Problem[state]{
		Entry:  state{},
		Bottom: func() state { return nil }, // nil = unreached (top)
		Transfer: func(n ast.Node, s state) state {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return s
			}
			out := make(state, len(s)+1)
			for k := range s {
				out[k] = true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					out[id.Name] = true
				}
			}
			return out
		},
		Merge: func(a, b state) state {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			out := make(state)
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b state) bool {
			if (a == nil) != (b == nil) || len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
	res := Forward(g, prob)
	in := res.In[g.Exit]
	if in == nil {
		t.Fatal("exit unreached")
	}
	if in["x"] {
		t.Fatal("x must-assigned at exit despite the untaken branch")
	}
}
