// Package analysis is a self-contained static-analysis framework for
// the ljqlint suite: a stdlib-only re-implementation of the core of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic), plus a
// package loader and a deterministic runner.
//
// Why not depend on x/tools? The repository is intentionally
// zero-dependency (go.mod has no requires), and the subset of the
// framework the suite needs — syntax + full type information per
// package, diagnostics with positions, testdata fixtures — is small
// and stable. The types here mirror the x/tools API shape closely
// enough that the analyzers would port to the real framework by
// changing one import line; see cmd/ljqlint for the driver.
//
// The suite's five analyzers live in subpackages (budgetcharge,
// detrand, floatsafe, ctxflow, panicguard); internal/analysis/suite
// maps them onto the repository's packages; and
// internal/analysis/analysistest runs them over `// want` annotated
// fixtures.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer (the subset without facts
// and analyzer dependencies, which the suite does not need).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ljqlint:allow directives. It must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation: first line is a summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzer with one type-checked package and a sink
// for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers a diagnostic. Analyzers normally use Reportf.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the runner.
	Analyzer string
}

// Finding is a diagnostic resolved to a concrete file position.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Run applies each analyzer to the package and returns the surviving
// findings: diagnostics suppressed by //ljqlint:allow directives (see
// directive.go) are dropped. Findings are sorted by position then
// analyzer name, so output is deterministic.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			posn := pkg.Fset.Position(d.Pos)
			if sup.allows(name, posn, d.Pos) {
				return
			}
			out = append(out, Finding{Position: posn, Analyzer: name, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
