package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// Loader parses and type-checks packages of one module (plus, for
// fixture tests, packages under an extra source root) using only the
// standard library: module-local imports are resolved against the
// module directory tree, everything else falls back to the stdlib
// source importer. All packages share one FileSet so positions compose.
//
// The loader is not safe for concurrent use.
type Loader struct {
	fset *token.FileSet
	// moduleRoot is the directory containing go.mod; modulePath its
	// declared module path.
	moduleRoot, modulePath string
	// extraRoot, when set, resolves import paths that are neither
	// module-local nor stdlib against extraRoot/<importPath>
	// (GOPATH-style, used by analysistest fixtures).
	extraRoot string
	std       types.ImporterFrom
	pkgs      map[string]*Package
	loading   map[string]bool
}

// NewLoader returns a loader for the module rooted at (or above) dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		fset:       fset,
		moduleRoot: root,
		modulePath: path,
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// SetFixtureRoot installs a GOPATH-style src root for fixture imports.
func (l *Loader) SetFixtureRoot(dir string) { l.extraRoot = dir }

// ModulePath returns the module path of the loaded module.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleRoot returns the directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// Fset returns the shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks up from dir to the first go.mod and parses its
// module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module") {
					p := strings.TrimSpace(strings.TrimPrefix(line, "module"))
					p = strings.Trim(p, `"`)
					if p == "" {
						break
					}
					return d, p, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
	}
}

// dirFor maps an import path to a source directory, or "" when the
// path is not module-local (and not under the fixture root).
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.modulePath {
		return l.moduleRoot
	}
	if rest, ok := strings.CutPrefix(importPath, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest))
	}
	if l.extraRoot != "" {
		d := filepath.Join(l.extraRoot, filepath.FromSlash(importPath))
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d
		}
	}
	return ""
}

// Load parses and type-checks the package with the given import path
// (module-local or fixture-root), memoized.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir := l.dirFor(importPath)
	if dir == "" {
		return nil, fmt.Errorf("analysis: import path %q is not module-local", importPath)
	}
	return l.loadDir(dir, importPath)
}

func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := GoFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// loaderImporter adapts Loader to types.Importer for the checker's
// import resolution: module-local (and fixture) packages recurse into
// the loader, everything else goes to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// GoFilesIn lists the buildable non-test Go files of dir in sorted
// order, honoring //go:build constraints under the default build
// context (so e.g. ljqdebug-tagged files are excluded, exactly as in
// a default `go build`).
func GoFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LocalPackages walks the module tree under root (a directory inside
// the module) and returns the import paths of every directory holding
// buildable Go files, skipping testdata, hidden directories, and
// vendor. This is the loader-native equivalent of the `./...` pattern.
func (l *Loader) LocalPackages(root string) ([]string, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var out []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != abs && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		names, err := GoFilesIn(path)
		if err != nil || len(names) == 0 {
			return nil //nolint:nilerr // unreadable dir: skip, like go list -e
		}
		rel, err := filepath.Rel(l.moduleRoot, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.modulePath)
		} else {
			out = append(out, l.modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
