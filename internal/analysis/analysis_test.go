package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		want []string // nil means "not a directive"
	}{
		{"//ljqlint:allow detrand -- map copy", []string{"detrand"}},
		{"//ljqlint:allow detrand,floatsafe -- both", []string{"detrand", "floatsafe"}},
		{"//ljqlint:allow detrand, floatsafe -- spaced list", []string{"detrand", "floatsafe"}},
		{"//ljqlint:allow all -- blanket", []string{"all"}},
		{"//ljqlint:allow detrand", []string{"detrand"}}, // reason missing: parsed, reviewers catch it
		{"//ljqlint:allowdetrand -- glued", nil},
		{"//ljqlint:allow -- no names", nil},
		{"// ordinary comment", nil},
		{"//ljqlint:deny detrand", nil},
	}
	for _, c := range cases {
		got := parseDirective(c.text)
		if c.want == nil {
			if got != nil {
				t.Errorf("parseDirective(%q) = %v, want nil", c.text, got)
			}
			continue
		}
		var names []string
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		want := append([]string(nil), c.want...)
		sort.Strings(want)
		if !reflect.DeepEqual(names, want) {
			t.Errorf("parseDirective(%q) = %v, want %v", c.text, names, want)
		}
	}
}

const suppressionSrc = `package p

// describe is annotated at function scope.
//
//ljqlint:allow detrand -- whole function is order-insensitive
func describe() {
	_ = 1 // line 7
}

func other() {
	//ljqlint:allow floatsafe -- line above
	_ = 2 // line 12: suppressed by the directive on 11
	_ = 3 //ljqlint:allow budgetcharge -- same line
	_ = 4 // line 14: not suppressed
}
`

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestSuppressionScopes(t *testing.T) {
	fset, f := parseOne(t, suppressionSrc)
	sup := collectSuppressions(fset, []*ast.File{f})

	// Find positions by line.
	posAt := func(line int) (token.Position, token.Pos) {
		var found token.Pos
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || found != token.NoPos {
				return false
			}
			if fset.Position(n.Pos()).Line == line {
				found = n.Pos()
				return false
			}
			return true
		})
		if found == token.NoPos {
			t.Fatalf("no node on line %d", line)
		}
		return fset.Position(found), found
	}

	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{7, "detrand", true},       // inside describe's body: func-doc scope
		{7, "floatsafe", false},    // func-doc names only detrand
		{12, "floatsafe", true},    // directive on the line above
		{13, "budgetcharge", true}, // trailing same-line directive
		{14, "budgetcharge", false},
		{14, "detrand", false}, // other() has no func-scope allowance
	}
	for _, c := range cases {
		posn, pos := posAt(c.line)
		if got := sup.allows(c.analyzer, posn, pos); got != c.want {
			t.Errorf("line %d analyzer %s: allows = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

func TestRunSortsAndSuppresses(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(loader.ModulePath() + "/internal/analysis/invariant")
	if err != nil {
		t.Fatal(err)
	}
	// A toy analyzer that reports every function declaration.
	toy := &Analyzer{
		Name: "toy",
		Doc:  "reports every function declaration",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						p.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	findings, err := Run(pkg, []*Analyzer{toy})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("toy analyzer found no functions in the invariant package")
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Position.Filename > b.Position.Filename ||
			(a.Position.Filename == b.Position.Filename && a.Position.Line > b.Position.Line) {
			t.Fatalf("findings not sorted: %v before %v", a.Position, b.Position)
		}
	}
	for _, f := range findings {
		if f.Analyzer != "toy" {
			t.Fatalf("finding attributed to %q, want toy", f.Analyzer)
		}
	}
}

func TestLoaderExcludesDebugTaggedFiles(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(loader.ModulePath() + "/internal/analysis/invariant")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if name == "" {
			continue
		}
		if base := name[len(name)-len("enabled_debug.go"):]; base == "enabled_debug.go" {
			t.Fatal("loader included the ljqdebug-tagged file in a default build")
		}
	}
	// Enabled must type-check to the release-build constant.
	obj := pkg.Types.Scope().Lookup("Enabled")
	if obj == nil {
		t.Fatal("invariant.Enabled not found")
	}
}
