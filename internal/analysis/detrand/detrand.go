// Package detrand defines an analyzer enforcing the optimizer's
// reproducibility invariant: a fixed seed must reproduce an identical
// search trajectory, byte for byte.
//
// Every experiment in the reproduction (and every training signal a
// learned optimizer would extract from it) assumes that running a
// strategy twice with the same seed and budget visits the same states
// in the same order. Three constructs silently break that:
//
//   - the global top-level math/rand functions (rand.Intn, rand.Shuffle,
//     ...), which draw from a process-global, possibly racy source that
//     the run's seed does not control — use a seeded *rand.Rand;
//   - time.Now / time.Since in decision paths, which leak wall-clock
//     into the trajectory (the budget's deadline support is the single
//     sanctioned exception, annotated at its definition);
//   - ranging over a map in ordering-sensitive code: Go randomizes map
//     iteration order per run, so any value that depends on the order
//     keys were visited differs between identically-seeded runs.
//     Collect the keys, sort them, and range over the slice.
//
// `for range m` without iteration variables only counts iterations and
// observes no order; it is allowed. Order-insensitive folds (pure
// commutative aggregation) do exist, but proving commutativity is
// beyond a linter — annotate those with
// //ljqlint:allow detrand -- <why the fold is order-insensitive>.
package detrand

import (
	"go/ast"
	"go/types"

	"joinopt/internal/analysis"
)

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand, wall-clock reads, and map iteration in ordering-sensitive optimizer code",
	Run:  run,
}

// seededConstructors are the math/rand functions that *build* seeded
// generators rather than drawing from the global source.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an explicit *rand.Rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x)
			case *ast.RangeStmt:
				checkRange(pass, x)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand are seeded and fine; only package-level
		// draws hit the global source.
		if !analysis.IsTopLevelPkgFunc(fn, fn.Pkg().Path()) || seededConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"global %s.%s draws from the process-wide source and breaks seeded determinism; use a seeded *rand.Rand",
			fn.Pkg().Name(), fn.Name())
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
			pass.Reportf(call.Pos(),
				"time.%s leaks wall-clock into an ordering-sensitive path; trajectories must be reproducible from the seed and budget alone",
				fn.Name())
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.X == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// `for range m {}` (and blank-only bindings) observes no key
	// order: allowed.
	key, value := bound(rng.Key), bound(rng.Value)
	if !key && !value {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is nondeterministic and this range binds %s; sort the keys into a slice first (or annotate //ljqlint:allow detrand -- <why order-insensitive>)",
		boundVars(key, value))
}

// bound reports whether the range clause binds e to a non-blank name.
func bound(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return false
	}
	return true
}

func boundVars(key, value bool) string {
	switch {
	case key && value:
		return "key and value"
	case key:
		return "the key"
	default:
		return "the value"
	}
}
