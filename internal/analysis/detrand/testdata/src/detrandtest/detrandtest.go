// Package detrandtest exercises the detrand analyzer.
package detrandtest

import (
	"math/rand"
	"sort"
	"time"
)

// globalDraws use the process-wide source: all flagged.
func globalDraws() int {
	n := rand.Intn(10)                 // want `global rand.Intn draws from the process-wide source`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand.Shuffle draws from the process-wide source`
	return n + rand.Int()              // want `global rand.Int draws from the process-wide source`
}

// seeded uses an explicit generator: ok (including the constructors).
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.1, 1, 100)
	return rng.Intn(10) + int(z.Uint64())
}

// wallClock reads the clock in a decision path: flagged.
func wallClock() int64 {
	t := time.Now()             // want `time.Now leaks wall-clock`
	return int64(time.Since(t)) // want `time.Since leaks wall-clock`
}

// duration constants and arithmetic are fine.
func durations(d time.Duration) time.Duration { return d + time.Second }

// mapOrder ranges a map binding the key: flagged.
func mapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic and this range binds the key`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapOrderValue binds only the value: still order-sensitive, flagged.
func mapOrderValue(m map[string]int) int {
	last := 0
	for _, v := range m { // want `map iteration order is nondeterministic and this range binds the value`
		last = v
	}
	return last
}

// mapCount binds nothing: iteration count only, allowed.
func mapCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// mapAllowed is an acknowledged order-insensitive fold.
func mapAllowed(m map[string]int) int {
	sum := 0
	//ljqlint:allow detrand -- commutative sum, order-insensitive
	for _, v := range m {
		sum += v
	}
	return sum
}

// sliceRange is fine.
func sliceRange(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
