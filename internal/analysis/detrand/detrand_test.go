package detrand_test

import (
	"testing"

	"joinopt/internal/analysis/analysistest"
	"joinopt/internal/analysis/detrand"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "detrandtest")
}
