package floatsafe_test

import (
	"testing"

	"joinopt/internal/analysis/analysistest"
	"joinopt/internal/analysis/floatsafe"
)

func TestFloatSafe(t *testing.T) {
	analysistest.Run(t, "testdata", floatsafe.Analyzer, "floatsafetest")
}
