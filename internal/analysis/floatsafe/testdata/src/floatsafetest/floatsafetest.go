// Package floatsafetest exercises the floatsafe analyzer.
package floatsafetest

import (
	"math"

	"joinopt/internal/analysis/invariant"
)

// computedEquality compares two computed floats exactly: flagged.
func computedEquality(a, b float64) bool {
	return a*2 == b+1 // want `== between two computed floats is almost never exact`
}

func computedInequality(a, b float64) bool {
	return a != b // want `!= between two computed floats is almost never exact`
}

// sentinelCompare against a constant is the exact-sentinel idiom: ok.
func sentinelCompare(a float64) bool {
	return a == 0 || a != 1
}

// tieBreak acknowledges a deliberate exact tie-break.
func tieBreak(score, best float64, i, j int) bool {
	return score < best || (score == best && i < j) //ljqlint:allow floatsafe -- deterministic exact tie-break on equal scores
}

// intEquality is not a float comparison: ok.
func intEquality(a, b int) bool { return a == b }

// floatKeyed declares a float-keyed map: flagged.
func floatKeyed() map[float64]int { // want `float-keyed map`
	return nil
}

// floatSwitch switches on a computed float: flagged.
func floatSwitch(v float64) int {
	switch v * 2 { // want `switch on a computed float`
	case 1:
		return 1
	}
	return 0
}

// space is a toy cost boundary.
type space struct{ c float64 }

// Cost guards non-finite results with math.IsNaN: ok.
func (s *space) Cost() float64 {
	if math.IsNaN(s.c) {
		return math.Inf(1)
	}
	return s.c
}

// unguarded is a toy evaluator whose boundary forgets the guard.
type unguarded struct{ c float64 }

// Cost returns a float with no guard: flagged.
func (u *unguarded) Cost() float64 { // want `exported cost boundary Cost returns float64 without a non-finite guard`
	return u.c * 2
}

// guardedByInvariant uses the ljqdebug-gated helper: ok.
type guardedByInvariant struct{ c float64 }

// Cost delegates the guard to invariant.Finite.
func (g *guardedByInvariant) Cost() float64 {
	total := g.c * 2
	if invariant.Enabled {
		invariant.Finite(total, "toy cost")
	}
	return total
}

// cost (unexported) is not a boundary: ok.
type inner struct{ c float64 }

func (i *inner) cost() float64 { return i.c }
