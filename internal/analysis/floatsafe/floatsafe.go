// Package floatsafe defines an analyzer guarding the cost model's
// float arithmetic against the two failure modes that corrupt strategy
// comparisons silently: exact equality on computed floats, and
// unguarded non-finite values at cost boundaries.
//
// PR 1's tracker bug is the canonical motivation: a NaN produced by an
// injected cost fault froze the incumbent forever, because `c <
// bestCost` is always false when bestCost is NaN — and nothing ever
// tested for it. The analyzer enforces:
//
//   - no == / != between two *computed* float expressions. Comparing
//     against a float constant (x == 0, the exact sentinel idiom) is
//     allowed: constants are exactly representable sentinels, computed
//     values are not. Deliberate exact tie-breaks acknowledge the risk
//     with //ljqlint:allow floatsafe -- <why exact equality is right>;
//   - no float-keyed maps (NaN keys are unretrievable, and float keys
//     make iteration-order hazards worse) and no switch on a float tag;
//   - every exported method or function named exactly "Cost" that
//     returns float64 — the metered pricing boundary of a search space
//     or evaluator — must guard non-finite results: lexically contain a
//     call to math.IsNaN / math.IsInf, or to the
//     internal/analysis/invariant helpers (whose ljqdebug-gated checks
//     compile away in release builds).
package floatsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"joinopt/internal/analysis"
)

const invariantPkg = "joinopt/internal/analysis/invariant"

// Analyzer is the floatsafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floatsafe",
	Doc:  "forbid exact equality on computed floats and require NaN/Inf guards at cost boundaries",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkEquality(pass, x)
			case *ast.MapType:
				checkMapKey(pass, x)
			case *ast.SwitchStmt:
				checkSwitch(pass, x)
			case *ast.FuncDecl:
				checkCostBoundary(pass, x)
			}
			return true
		})
	}
	return nil
}

// isComputedFloat reports whether e is a float-typed expression that is
// not a compile-time constant.
func isComputedFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return analysis.IsFloat(tv.Type) && tv.Value == nil
}

func checkEquality(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isComputedFloat(pass, b.X) && isComputedFloat(pass, b.Y) {
		pass.Reportf(b.OpPos,
			"%s between two computed floats is almost never exact (and always false against NaN); compare with an ordering or annotate //ljqlint:allow floatsafe -- <why exact>",
			b.Op)
	}
}

func checkMapKey(pass *analysis.Pass, mt *ast.MapType) {
	tv, ok := pass.TypesInfo.Types[mt.Key]
	if !ok || tv.Type == nil {
		return
	}
	if analysis.IsFloat(tv.Type) {
		pass.Reportf(mt.Pos(),
			"float-keyed map: a NaN key can be inserted but never retrieved, and float keys amplify iteration-order hazards; key by a discrete quantity")
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if isComputedFloat(pass, sw.Tag) {
		pass.Reportf(sw.Tag.Pos(),
			"switch on a computed float compares with exact equality per case; use if/else with ordered comparisons")
	}
}

// checkCostBoundary enforces the non-finite guard on exported Cost
// entry points.
func checkCostBoundary(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !fd.Name.IsExported() || fd.Name.Name != "Cost" {
		return
	}
	if !returnsFloat64(pass, fd) {
		return
	}
	if analysis.ContainsCallTo(pass.TypesInfo, fd.Body, isFiniteGuard) {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"exported cost boundary %s returns float64 without a non-finite guard; check math.IsNaN/math.IsInf or use invariant.Finite so NaN cannot poison the incumbent",
		fd.Name.Name)
}

func returnsFloat64(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, f := range fd.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[f.Type]
		if ok && tv.Type != nil && analysis.IsFloat(tv.Type) {
			return true
		}
	}
	return false
}

func isFiniteGuard(fn *types.Func) bool {
	if analysis.IsPkgFunc(fn, "math", "IsNaN") || analysis.IsPkgFunc(fn, "math", "IsInf") {
		return true
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == invariantPkg
}
