package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the object called by call: a *types.Func for direct
// function and method calls (including method values through a
// selector), or nil for indirect calls through variables, conversions
// and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	return FuncOf(info, ast.Unparen(call.Fun))
}

// FuncOf resolves an expression naming a function or method (an
// identifier or selector) to its *types.Func, or nil.
func FuncOf(info *types.Info, e ast.Expr) *types.Func {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[x.Sel] // package-qualified identifier
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the function or method pkgPath.name
// (for methods, the receiver's package is matched; the receiver type
// itself is not constrained).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// IsTopLevelPkgFunc reports whether fn is a package-level function (not
// a method) of pkgPath.
func IsTopLevelPkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// WalkFuncs traverses every function declaration and function literal
// in the file, invoking visit with the function node (an *ast.FuncDecl
// or *ast.FuncLit) and its body. Nested literals are visited after
// their enclosing function.
func WalkFuncs(file *ast.File, visit func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn, fn.Body)
			}
		case *ast.FuncLit:
			visit(fn, fn.Body)
		}
		return true
	})
}

// ContainsCallTo reports whether the subtree contains a direct call to
// (or a method-value reference of) a function for which match returns
// true. Method values matter: passing budget.Charge as a callback is
// as much "metering" as calling it.
func ContainsCallTo(info *types.Info, root ast.Node, match func(*types.Func) bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := Callee(info, x); fn != nil && match(fn) {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if fn := FuncOf(info, x); fn != nil && match(fn) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// IsFloat reports whether t's underlying type (after named-type
// unwrapping) is a floating-point basic type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
