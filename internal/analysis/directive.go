package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding can be acknowledged in source with
//
//	//ljqlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// The directive suppresses matching diagnostics in one of three
// scopes:
//
//   - on the same line as the diagnostic (trailing comment);
//   - on the line immediately above the diagnostic;
//   - in the doc comment of a function declaration: suppresses every
//     matching diagnostic inside that function's body.
//
// The reason after " -- " is mandatory by convention (ljqlint does not
// enforce it mechanically, reviewers do): an allow without a recorded
// justification defeats the point of the gate.
const directivePrefix = "//ljqlint:allow"

type span struct {
	file       string
	start, end token.Pos
	names      map[string]bool
}

type suppressions struct {
	// byLine maps file:line to the analyzer names allowed on that line.
	byLine map[string]map[string]bool
	// standalone maps file:line to the names from directives that are
	// alone on their line (no code before the comment). Only these
	// extend to the line below — a trailing directive covers just its
	// own line, so an allow never silently leaks onto the next
	// statement.
	standalone map[string]map[string]bool
	// spans are function-scoped allowances.
	spans []span
}

// parseDirective extracts the analyzer names from one comment, or nil
// if the comment is not an ljqlint directive.
func parseDirective(text string) map[string]bool {
	if !strings.HasPrefix(text, directivePrefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //ljqlint:allowfoo
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	names := map[string]bool{}
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if f != "" {
			names[f] = true
		}
	}
	if len(names) == 0 {
		return nil
	}
	return names
}

func lineKey(file string, line int) string {
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	// Small manual itoa to avoid fmt in the hot path.
	if line == 0 {
		b.WriteByte('0')
	} else {
		var buf [12]byte
		i := len(buf)
		for line > 0 {
			i--
			buf[i] = byte('0' + line%10)
			line /= 10
		}
		b.Write(buf[i:])
	}
	return b.String()
}

// collectSuppressions scans the package's comments for directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{
		byLine:     map[string]map[string]bool{},
		standalone: map[string]map[string]bool{},
	}
	for _, f := range files {
		fileName := fset.Position(f.Pos()).Filename
		codeBefore := earliestCodePosByLine(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseDirective(c.Text)
				if names == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				key := lineKey(fileName, line)
				if s.byLine[key] == nil {
					s.byLine[key] = map[string]bool{}
				}
				for n := range names {
					s.byLine[key][n] = true
				}
				if first, ok := codeBefore[line]; !ok || first >= c.Pos() {
					if s.standalone[key] == nil {
						s.standalone[key] = map[string]bool{}
					}
					for n := range names {
						s.standalone[key][n] = true
					}
				}
			}
		}
		// Function-scoped: directive inside a FuncDecl's doc comment.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			merged := map[string]bool{}
			for _, c := range fd.Doc.List {
				for n := range parseDirective(c.Text) {
					merged[n] = true
				}
			}
			if len(merged) > 0 {
				s.spans = append(s.spans, span{
					file:  fileName,
					start: fd.Body.Pos(),
					end:   fd.Body.End(),
					names: merged,
				})
			}
		}
	}
	return s
}

// earliestCodePosByLine records, per line, the position of the first
// non-comment token. Used to distinguish a standalone directive comment
// line from a directive trailing code.
func earliestCodePosByLine(fset *token.FileSet, f *ast.File) map[int]token.Pos {
	out := map[int]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		line := fset.Position(n.Pos()).Line
		if p, ok := out[line]; !ok || n.Pos() < p {
			out[line] = n.Pos()
		}
		return true
	})
	return out
}

// allows reports whether a diagnostic from the named analyzer at the
// given position is suppressed.
func (s *suppressions) allows(name string, posn token.Position, pos token.Pos) bool {
	if m := s.byLine[lineKey(posn.Filename, posn.Line)]; m[name] || m["all"] {
		return true
	}
	if m := s.standalone[lineKey(posn.Filename, posn.Line-1)]; m[name] || m["all"] {
		return true
	}
	for _, sp := range s.spans {
		if sp.file == posn.Filename && sp.start <= pos && pos < sp.end && (sp.names[name] || sp.names["all"]) {
			return true
		}
	}
	return false
}
