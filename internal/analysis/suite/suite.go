// Package suite maps the ljqlint analyzers onto the repository's
// packages. Analyzers are whole-package checks; *which* packages each
// invariant governs is policy, and this package is where that policy
// lives (the analyzers themselves stay scope-free, like x/tools
// analyzers).
package suite

import (
	"strings"

	"joinopt/internal/analysis"
	"joinopt/internal/analysis/budgetcharge"
	"joinopt/internal/analysis/ctxflow"
	"joinopt/internal/analysis/detrand"
	"joinopt/internal/analysis/errsink"
	"joinopt/internal/analysis/floatsafe"
	"joinopt/internal/analysis/hotalloc"
	"joinopt/internal/analysis/lockhold"
	"joinopt/internal/analysis/panicguard"
	"joinopt/internal/analysis/slotresolve"
)

// Module is the module path the scopes are expressed against.
const Module = "joinopt"

// Entry pairs an analyzer with the packages it governs.
type Entry struct {
	Analyzer *analysis.Analyzer
	// InScope reports whether the analyzer applies to the package.
	InScope func(importPath string) bool
}

// meteredPackages are the packages that perform search work under the
// shared budget: the budget-accounting invariant lives here.
var meteredPackages = []string{
	"internal/plan", "internal/search", "internal/heuristics",
	"internal/dp", "internal/bushy", "internal/core",
}

// Entries returns the suite: every analyzer with its package scope.
//
//   - budgetcharge: the metered search packages only — other code may
//     price joins freely (the engine *executes* them; cmd tools
//     explain them).
//   - detrand, floatsafe, ctxflow, panicguard: the public facade and
//     all of internal/ except internal/analysis itself (the linter is
//     not on the optimizer's seeded trajectory; keeping it out of
//     scope avoids self-referential directive noise) — floatsafe and
//     ctxflow do include internal/analysis.
//   - slotresolve: the packages that speak the breaker slot protocol —
//     the resilient client (breaker state machine), the cluster router
//     and health view, and serve (which owns the daemon wiring).
//   - errsink: the durability paths — vfs, persist and serve (which
//     flushes snapshots on drain). cluster is out of scope: its one
//     Close is an http response body on a best-effort warm-start path.
//   - lockhold: the concurrency-bearing serving layers — serve,
//     plancache, cluster and client, where a blocked critical section
//     convoys live requests.
//   - hotalloc: everywhere — the directive is opt-in per function, so
//     whole-tree scope costs nothing where nothing is annotated.
func Entries() []Entry {
	return []Entry{
		{budgetcharge.Analyzer, within(meteredPackages...)},
		{detrand.Analyzer, allInternalExcept("internal/analysis")},
		{floatsafe.Analyzer, allInternal()},
		{ctxflow.Analyzer, allInternal()},
		{panicguard.Analyzer, allInternalExcept("internal/analysis")},
		{slotresolve.Analyzer, within("internal/client", "internal/cluster", "internal/serve")},
		{errsink.Analyzer, within("internal/vfs", "internal/persist", "internal/serve")},
		{lockhold.Analyzer, within("internal/serve", "internal/plancache", "internal/cluster", "internal/client")},
		{hotalloc.Analyzer, allInternal()},
	}
}

// For returns the analyzers governing one package.
func For(importPath string) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, e := range Entries() {
		if e.InScope(importPath) {
			out = append(out, e.Analyzer)
		}
	}
	return out
}

// within matches the module-relative package paths given.
func within(rels ...string) func(string) bool {
	set := map[string]bool{}
	for _, r := range rels {
		set[Module+"/"+r] = true
	}
	return func(ip string) bool { return set[ip] }
}

// allInternal matches the module root package and everything under
// internal/.
func allInternal() func(string) bool {
	return func(ip string) bool {
		return ip == Module || strings.HasPrefix(ip, Module+"/internal/")
	}
}

// allInternalExcept is allInternal minus the given module-relative
// subtrees.
func allInternalExcept(rels ...string) func(string) bool {
	base := allInternal()
	return func(ip string) bool {
		if !base(ip) {
			return false
		}
		for _, r := range rels {
			full := Module + "/" + r
			if ip == full || strings.HasPrefix(ip, full+"/") {
				return false
			}
		}
		return true
	}
}
