package suite_test

import (
	"testing"

	"joinopt/internal/analysis"
	"joinopt/internal/analysis/suite"
)

func TestScopes(t *testing.T) {
	cases := []struct {
		importPath string
		want       map[string]bool // analyzer name -> expected in scope
	}{
		{"joinopt", map[string]bool{
			"budgetcharge": false, "detrand": true, "floatsafe": true,
			"ctxflow": true, "panicguard": true,
		}},
		{"joinopt/internal/plan", map[string]bool{
			"budgetcharge": true, "detrand": true, "floatsafe": true,
			"ctxflow": true, "panicguard": true,
		}},
		{"joinopt/internal/engine", map[string]bool{
			"budgetcharge": false, "detrand": true,
		}},
		{"joinopt/internal/analysis", map[string]bool{
			"budgetcharge": false, "detrand": false, "floatsafe": true,
			"ctxflow": true, "panicguard": false, "hotalloc": true,
			"slotresolve": false, "errsink": false, "lockhold": false,
		}},
		{"joinopt/internal/analysis/invariant", map[string]bool{
			"detrand": false, "panicguard": false, "floatsafe": true,
		}},
		{"joinopt/cmd/joinopt", map[string]bool{
			"budgetcharge": false, "detrand": false, "floatsafe": false,
		}},
		{"joinopt/internal/client", map[string]bool{
			"slotresolve": true, "errsink": false, "lockhold": true,
			"hotalloc": true,
		}},
		{"joinopt/internal/cluster", map[string]bool{
			"slotresolve": true, "errsink": false, "lockhold": true,
		}},
		{"joinopt/internal/persist", map[string]bool{
			"slotresolve": false, "errsink": true, "lockhold": false,
		}},
		{"joinopt/internal/serve", map[string]bool{
			"slotresolve": true, "errsink": true, "lockhold": true,
			"hotalloc": true,
		}},
		{"joinopt/internal/vfs", map[string]bool{
			"errsink": true, "lockhold": false,
		}},
		{"joinopt/internal/plancache", map[string]bool{
			"lockhold": true, "errsink": false, "slotresolve": false,
		}},
	}
	for _, c := range cases {
		got := map[string]bool{}
		for _, a := range suite.For(c.importPath) {
			got[a.Name] = true
		}
		for name, want := range c.want {
			if got[name] != want {
				t.Errorf("%s: analyzer %s in scope = %v, want %v",
					c.importPath, name, got[name], want)
			}
		}
	}
}

func TestEntriesCoverAllNineAnalyzers(t *testing.T) {
	names := map[string]bool{}
	for _, e := range suite.Entries() {
		if e.Analyzer == nil || e.InScope == nil {
			t.Fatal("entry with nil analyzer or scope")
		}
		names[e.Analyzer.Name] = true
	}
	for _, want := range []string{
		"budgetcharge", "detrand", "floatsafe", "ctxflow", "panicguard",
		"slotresolve", "errsink", "lockhold", "hotalloc",
	} {
		if !names[want] {
			t.Errorf("suite is missing analyzer %s", want)
		}
	}
	if len(names) != 9 {
		t.Errorf("suite has %d analyzers, want 9", len(names))
	}
}

// TestRepositoryIsClean runs the whole suite over the whole module —
// the same check CI's ljqlint job performs. Every finding must either
// be fixed or carry an //ljqlint:allow directive with a justification;
// a failure here means a new violation crept in.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the full module is slow; skipped with -short")
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LocalPackages(loader.ModuleRoot())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ip := range pkgs {
		analyzers := suite.For(ip)
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := loader.Load(ip)
		if err != nil {
			t.Fatalf("load %s: %v", ip, err)
		}
		findings, err := analysis.Run(pkg, analyzers)
		if err != nil {
			t.Fatalf("run %s: %v", ip, err)
		}
		for _, f := range findings {
			t.Errorf("%s:%d:%d: %s (%s)",
				f.Position.Filename, f.Position.Line, f.Position.Column,
				f.Message, f.Analyzer)
			total++
		}
	}
	if total > 0 {
		t.Logf("%d finding(s); fix them or annotate //ljqlint:allow with a reason", total)
	}
}
