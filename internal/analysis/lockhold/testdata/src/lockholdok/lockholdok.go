// Package lockholdok holds clean locking patterns the lockhold
// analyzer must accept without diagnostics.
package lockholdok

import (
	"context"
	"sync"
)

type server struct {
	mu      sync.Mutex
	ch      chan int
	waiters []chan struct{}
	state   int
}

// unlockBeforeWait releases the shard lock before parking — the
// plancache singleflight shape.
func (s *server) unlockBeforeWait(ctx context.Context) int {
	s.mu.Lock()
	if s.state != 0 {
		v := s.state
		s.mu.Unlock()
		return v
	}
	w := make(chan struct{})
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	select {
	case <-w:
	case <-ctx.Done():
	}
	return 0
}

// pollUnderLock uses a select WITH default: non-blocking poll is fine.
func (s *server) pollUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.state = v
	default:
	}
}

// notifyUnderLock closes a waiter channel under the lock: close never
// blocks.
func (s *server) notifyUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.waiters {
		close(w)
	}
	s.waiters = nil
}

// launchUnderLock starts a goroutine that blocks — the goroutine has
// its own stack and no lock.
func (s *server) launchUnderLock(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		<-done
	}()
}

// condWait releases the mutex while waiting by contract.
func condWait(mu *sync.Mutex, cond *sync.Cond, ready func() bool) {
	mu.Lock()
	for !ready() {
		cond.Wait()
	}
	mu.Unlock()
}
