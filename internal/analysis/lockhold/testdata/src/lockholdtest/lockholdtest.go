// Package lockholdtest exercises the lockhold analyzer: no blocking
// operations while a mutex is held.
package lockholdtest

import (
	"context"
	"net/http"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	ch    chan int
	state int
}

// recvUnderLock waits on a channel inside the critical section.
func (s *server) recvUnderLock() {
	s.mu.Lock()
	v := <-s.ch // want `channel receive while holding mutex "s\.mu"`
	s.state = v
	s.mu.Unlock()
}

// sendUnderDeferredLock holds via defer across a send.
func (s *server) sendUnderDeferredLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `channel send while holding mutex "s\.mu"`
}

// ctxWaitUnderRLock waits for cancellation under a read lock.
func (s *server) ctxWaitUnderRLock(ctx context.Context) {
	s.rw.RLock()
	<-ctx.Done() // want `channel receive while holding mutex "s\.rw"`
	s.rw.RUnlock()
}

// selectUnderLock parks in a select with the lock held.
func (s *server) selectUnderLock(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while holding mutex "s\.mu"`
	case v := <-s.ch:
		s.state = v
	case <-done:
	}
}

// sleepUnderLock sleeps in the critical section.
func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding mutex "s\.mu"`
	s.mu.Unlock()
}

// httpUnderLock performs network I/O in the critical section.
func (s *server) httpUnderLock(c *http.Client, url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := c.Get(url) // want `net/http Get while holding mutex "s\.mu"`
	if err == nil {
		resp.Body.Close()
	}
}

// blockingHelper hides the wait one call away.
func (s *server) blockingHelper() {
	<-s.ch
}

// helperUnderLock blocks through the summarized helper.
func (s *server) helperUnderLock() {
	s.mu.Lock()
	s.blockingHelper() // want `call to blocking blockingHelper while holding mutex "s\.mu"`
	s.mu.Unlock()
}

// rangeChanUnderLock drains a channel under the lock.
func (s *server) rangeChanUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want `ranging over a channel while holding mutex "s\.mu"`
		s.state += v
	}
}
