package lockhold_test

import (
	"testing"

	"joinopt/internal/analysis/analysistest"
	"joinopt/internal/analysis/lockhold"
)

func TestLockHold(t *testing.T) {
	analysistest.Run(t, "testdata", lockhold.Analyzer, "lockholdtest", "lockholdok")
}
