// Package lockhold checks that no blocking operation happens while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives
// (including `<-ctx.Done()` waits and ranging over a channel), selects
// without a default clause, time.Sleep, WaitGroup.Wait, and network
// I/O through net/http or net dials. A request handler that blocks on
// the network inside a cache shard's critical section convoys every
// other request on that shard behind one slow peer.
//
// The analysis is a may-held dataflow over the CFG: Lock/RLock adds
// the receiver to the held set, Unlock/RUnlock removes it, and a
// `defer mu.Unlock()` keeps the mutex held to the end of the function
// (the epilogue releases it after the last real node, which is
// correct: blocking before the defer fires is still blocking under
// the lock). One level of interprocedural transfer within the
// package: calling a function whose body blocks is itself blocking.
// sync.Cond.Wait is deliberately not blocking — it releases the mutex
// while waiting. Function literals are separate functions: launching
// a goroutine that blocks is fine; the goroutine's own body is
// analyzed with its own (empty) held set.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"joinopt/internal/analysis"
	"joinopt/internal/analysis/cfg"
)

// Analyzer is the lockhold analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "no blocking calls (network I/O, channel ops, selects) while holding a mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, blockers: map[*types.Func]token.Pos{}}
	c.collectBlockers()
	for _, file := range pass.Files {
		c.commStmts = map[ast.Stmt]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectStmt); ok {
				for _, cl := range sel.Body.List {
					if comm := cl.(*ast.CommClause).Comm; comm != nil {
						c.commStmts[comm] = true
					}
				}
			}
			return true
		})
		analysis.WalkFuncs(file, func(node ast.Node, body *ast.BlockStmt) {
			c.checkFunc(body)
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// blockers maps same-package functions that may block to the
	// position of their first blocking operation.
	blockers map[*types.Func]token.Pos
	// commStmts are select communication clauses: their channel ops
	// are adjudicated by the select head, not as standalone ops.
	commStmts map[ast.Stmt]bool
}

// mutexMethod recognizes (*sync.Mutex)/(*sync.RWMutex) Lock/RLock/
// Unlock/RUnlock calls (including promoted methods of embedded
// mutexes) and returns the held-set key and whether it acquires.
func (c *checker) mutexMethod(call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// directBlocking returns the position and description of the first
// blocking operation directly inside root (not descending into
// function literals), or false.
func (c *checker) directBlocking(root ast.Node) (token.Pos, string, bool) {
	var pos token.Pos
	var what string
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case ast.Stmt:
			if c.commStmts[x] {
				return false // the select head owns this channel op
			}
			switch s := x.(type) {
			case *ast.SendStmt:
				pos, what, found = s.Arrow, "channel send", true
				return false
			case *ast.SelectStmt:
				if !hasDefault(s) {
					pos, what, found = s.Select, "select without default", true
					return false
				}
				// A select with default polls; its clauses are
				// non-blocking, but their bodies may still block.
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pos, what, found = x.OpPos, "channel receive", true
				return false
			}
		case *ast.CallExpr:
			if p, w, ok := c.callBlocks(x); ok {
				pos, what, found = p, w, true
				return false
			}
		}
		return true
	})
	if !found {
		return token.NoPos, "", false
	}
	return pos, what, true
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cl.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// callBlocks reports whether call is a known-blocking stdlib call or a
// same-package function summarized as blocking.
func (c *checker) callBlocks(call *ast.CallExpr) (token.Pos, string, bool) {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return token.NoPos, "", false
	}
	if _, ok := c.blockers[fn]; ok {
		return call.Pos(), "call to blocking " + fn.Name(), true
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	switch pkg {
	case "time":
		if name == "Sleep" {
			return call.Pos(), "time.Sleep", true
		}
	case "sync":
		if name == "Wait" && recvNamed(fn) == "WaitGroup" {
			return call.Pos(), "WaitGroup.Wait", true
		}
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip":
			return call.Pos(), "net/http "+name, true
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "DialContext", "Listen", "Accept":
			return call.Pos(), "net."+name, true
		}
	}
	return token.NoPos, "", false
}

func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// collectBlockers summarizes which package functions may block,
// iterating to a fixpoint so helper chains transfer.
func (c *checker) collectBlockers() {
	type decl struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var decls []decl
	for _, file := range c.pass.Files {
		// Comm statements must be known before summarizing.
		ast.Inspect(file, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectStmt); ok {
				for _, cl := range sel.Body.List {
					if comm := cl.(*ast.CommClause).Comm; comm != nil {
						if c.commStmts == nil {
							c.commStmts = map[ast.Stmt]bool{}
						}
						c.commStmts[comm] = true
					}
				}
			}
			return true
		})
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); fn != nil {
				decls = append(decls, decl{fn, fd.Body})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if _, done := c.blockers[d.fn]; done {
				continue
			}
			if pos, _, ok := c.directBlocking(d.body); ok {
				c.blockers[d.fn] = pos
				changed = true
			}
		}
	}
}

// state is the may-held lock set: key → Lock-site position. nil =
// unreached.
type state map[string]token.Pos

func (c *checker) checkFunc(body *ast.BlockStmt) {
	g := cfg.Build(body)
	prob := cfg.Problem[state]{
		Entry:  state{},
		Bottom: func() state { return nil },
		Transfer: func(n ast.Node, s state) state {
			if s == nil {
				return nil
			}
			return c.transfer(n, s)
		},
		Merge: func(a, b state) state {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			out := state{}
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				if have, ok := out[k]; !ok || v < have {
					out[k] = v
				}
			}
			return out
		},
		Equal: func(a, b state) bool {
			if (a == nil) != (b == nil) || len(a) != len(b) {
				return false
			}
			for k, av := range a {
				if bv, ok := b[k]; !ok || av != bv {
					return false
				}
			}
			return true
		},
	}
	res := cfg.Forward(g, prob)

	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, what, lock string) {
		if !reported[pos] {
			reported[pos] = true
			c.pass.Reportf(pos, "%s while holding mutex %q", what, lock)
		}
	}
	for _, b := range g.Blocks {
		s := res.In[b]
		if s == nil {
			continue
		}
		if b.Kind == cfg.SelectHead && len(s) > 0 {
			if sel, ok := b.Stmt.(*ast.SelectStmt); ok && !hasDefault(sel) {
				report(sel.Select, "select without default", minKey(s))
			}
		}
		if b.Kind == cfg.RangeHead && len(s) > 0 {
			if rs, ok := b.Stmt.(*ast.RangeStmt); ok {
				if t := c.pass.TypesInfo.TypeOf(rs.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						report(rs.For, "ranging over a channel", minKey(s))
					}
				}
			}
		}
		cur := cloneState(s)
		for _, n := range b.Nodes {
			if len(cur) > 0 {
				if pos, what, ok := c.nodeBlocking(n); ok {
					report(pos, what, minKey(cur))
				}
			}
			cur = c.transfer(n, cur)
		}
	}
}

// minKey picks the lexically smallest held-lock name, keeping
// diagnostic text deterministic when several locks are held.
func minKey(s state) string {
	min := ""
	for k := range s {
		if min == "" || k < min {
			min = k
		}
	}
	return min
}

func cloneState(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// nodeBlocking is directBlocking, except defers: a deferred call runs
// at exit, so its blockingness belongs to the epilogue replay.
func (c *checker) nodeBlocking(n ast.Node) (token.Pos, string, bool) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return token.NoPos, "", false
	}
	return c.directBlocking(n)
}

func (c *checker) transfer(n ast.Node, s state) state {
	// Deferred unlocks release at exit, not at registration.
	if _, ok := n.(*ast.DeferStmt); ok {
		return s
	}
	out := cloneState(s)
	ast.Inspect(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, acquire, ok := c.mutexMethod(call); ok {
			if acquire {
				out[key] = call.Pos()
			} else {
				delete(out, key)
			}
		}
		return true
	})
	return out
}
