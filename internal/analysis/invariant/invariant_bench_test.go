package invariant_test

import (
	"testing"

	"joinopt/internal/analysis/invariant"
)

// The zero-overhead claim, measurable: in a default build the guarded
// loop and the bare loop must compile to the same code (compare
// BenchmarkGuardedSum with BenchmarkBareSum — both should report the
// same ns/op; under -tags ljqdebug the guarded one pays the checks).
//
//	go test -bench=Sum -benchtime=100000000x ./internal/analysis/invariant
//	go test -bench=Sum -benchtime=100000000x -tags ljqdebug ./internal/analysis/invariant

var sink float64

func BenchmarkBareSum(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += float64(i&7) * 1.5
	}
	sink = s
}

func BenchmarkGuardedSum(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += float64(i&7) * 1.5
		if invariant.Enabled {
			invariant.Finite(s, "running sum")
		}
	}
	sink = s
}
