//go:build !ljqdebug

package invariant

// Enabled is false in release builds: every `if invariant.Enabled`
// block is dead code and compiles away entirely.
const Enabled = false
