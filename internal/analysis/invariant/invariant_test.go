//go:build !ljqdebug

package invariant_test

import (
	"math"
	"testing"

	"joinopt/internal/analysis/invariant"
)

// TestDisabledByDefault pins the release-build contract: Enabled is a
// false constant and no assertion ever fires, whatever it is fed.
func TestDisabledByDefault(t *testing.T) {
	if invariant.Enabled {
		t.Fatal("invariant.Enabled must be false without the ljqdebug tag")
	}
	// None of these may panic in a release build.
	invariant.Assert(false, "must not fire")
	invariant.Finite(math.NaN(), "must not fire")
	invariant.Finite(math.Inf(1), "must not fire")
	invariant.NotNaN(math.NaN(), "must not fire")
	invariant.NonNegative(-1, "must not fire")
}

// TestGuardedBlockNotExecuted pins the calling convention: with
// Enabled false, the guard block (including argument evaluation) is
// never entered.
func TestGuardedBlockNotExecuted(t *testing.T) {
	evaluated := false
	poison := func() float64 { evaluated = true; return math.NaN() }
	if invariant.Enabled {
		invariant.Finite(poison(), "never evaluated")
	}
	if evaluated {
		t.Fatal("guard block ran in a release build")
	}
}

func TestIsViolationFalseForOtherPanics(t *testing.T) {
	if invariant.IsViolation("some panic") || invariant.IsViolation(nil) {
		t.Fatal("IsViolation must only recognize invariant panics")
	}
}
