//go:build ljqdebug

package invariant_test

import (
	"math"
	"strings"
	"testing"

	"joinopt/internal/analysis/invariant"
)

// Run with: go test -tags ljqdebug ./internal/analysis/invariant

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic containing %q", want)
		}
		if !invariant.IsViolation(r) {
			t.Fatalf("panic %v is not an invariant violation", r)
		}
		err, ok := r.(error)
		if !ok || !strings.Contains(err.Error(), want) {
			t.Fatalf("panic %v does not mention %q", r, want)
		}
	}()
	f()
}

func TestEnabledUnderTag(t *testing.T) {
	if !invariant.Enabled {
		t.Fatal("invariant.Enabled must be true under -tags ljqdebug")
	}
}

func TestAssertFires(t *testing.T) {
	invariant.Assert(true, "fine")
	mustPanic(t, "budget went negative", func() {
		invariant.Assert(false, "budget went negative: %d", -1)
	})
}

func TestFiniteFires(t *testing.T) {
	invariant.Finite(1.5, "cost")
	mustPanic(t, "cost is non-finite", func() { invariant.Finite(math.NaN(), "cost") })
	mustPanic(t, "cost is non-finite", func() { invariant.Finite(math.Inf(-1), "cost") })
}

func TestNotNaNFires(t *testing.T) {
	invariant.NotNaN(math.Inf(1), "saturated cost") // +Inf allowed
	mustPanic(t, "model cost is NaN", func() { invariant.NotNaN(math.NaN(), "model cost") })
}

func TestNonNegativeFires(t *testing.T) {
	invariant.NonNegative(0, "cardinality")
	mustPanic(t, "is negative or NaN", func() { invariant.NonNegative(-0.5, "cardinality") })
	mustPanic(t, "is negative or NaN", func() { invariant.NonNegative(math.NaN(), "cardinality") })
}
