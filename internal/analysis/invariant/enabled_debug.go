//go:build ljqdebug

package invariant

// Enabled is true under the ljqdebug build tag: assertions evaluate
// and panic on violation.
const Enabled = true
