// Package invariant provides build-tag-gated runtime assertions for
// the optimizer's hot paths.
//
// Release builds must pay nothing for assertions: plan.Evaluator.Cost
// runs millions of times per experiment. The package therefore exposes
// a compile-time constant, Enabled, that is false by default and true
// only under `-tags ljqdebug`. The calling convention is
//
//	if invariant.Enabled {
//	    invariant.Finite(total, "evaluator total cost")
//	}
//
// With Enabled a false constant, the compiler removes the whole guarded
// block — arguments are never evaluated, the branch never exists in the
// binary. BenchmarkGuardOverhead (invariant_bench_test.go) pins this:
// the guarded loop compiles to the same code as the bare loop.
//
// The floatsafe analyzer recognizes calls into this package as
// non-finite guards at cost boundaries, tying the static gate
// (ljqlint) to the dynamic one (ljqdebug test builds). CI runs the
// test suite both ways.
package invariant

import (
	"fmt"
	"math"
)

// Assert panics with a formatted message when cond is false and the
// ljqdebug tag is set. Call it only behind `if invariant.Enabled` so
// release builds do not even evaluate the arguments.
func Assert(cond bool, format string, args ...any) {
	if Enabled && !cond {
		panic(violation(fmt.Sprintf(format, args...)))
	}
}

// Finite panics when v is NaN or ±Inf and the ljqdebug tag is set.
// what names the quantity for the panic message.
func Finite(v float64, what string) {
	if Enabled && (math.IsNaN(v) || math.IsInf(v, 0)) {
		panic(violation(fmt.Sprintf("%s is non-finite: %v", what, v)))
	}
}

// NotNaN panics when v is NaN and the ljqdebug tag is set. Use it at
// boundaries where +Inf is a legitimate saturation value (estimator
// overflow, degraded-plan pricing) but NaN never is: NaN poisons every
// downstream comparison (PR 1's incumbent-freeze bug).
func NotNaN(v float64, what string) {
	if Enabled && math.IsNaN(v) {
		panic(violation(what + " is NaN"))
	}
}

// NonNegative panics when v < 0 or v is NaN and the ljqdebug tag is
// set. Costs and cardinalities are never negative.
func NonNegative(v float64, what string) {
	if Enabled && !(v >= 0) {
		panic(violation(fmt.Sprintf("%s is negative or NaN: %v", what, v)))
	}
}

// violation is the panic payload, distinguishable from ordinary panics
// by tests and by the optimizer's panic barriers.
type violation string

func (v violation) Error() string { return "invariant violated: " + string(v) }

// IsViolation reports whether a recovered panic value originated from
// this package.
func IsViolation(r any) bool {
	_, ok := r.(violation)
	return ok
}
