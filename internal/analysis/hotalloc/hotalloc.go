// Package hotalloc checks that functions annotated with a
// //ljqlint:hotpath directive in their doc comment stay
// allocation-free: it flags composite literals that allocate (slice
// and map literals, &struct{} escapes), make/new, append growth,
// closure allocations, string concatenation and string<->[]byte
// conversions, and concrete-to-interface conversions at call
// boundaries (boxing).
//
// The analyzer is the fast, syntactic half of a two-part gate: the
// bench-allocs CI job independently verifies the same functions with
// `go build -gcflags=-m` escape output and per-benchmark AllocsPerOp
// ceilings from ALLOC_BUDGETS.json (see cmd/allocgate). A residual
// allocation that is deliberate — an amortized scratch-buffer append,
// say — gets an //ljqlint:allow hotalloc directive with a reason and
// a budget entry, not silence.
//
// Plain calls are not flagged: callees are either themselves
// annotated (and checked), or covered by the benchmark ceilings.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"joinopt/internal/analysis"
)

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "//ljqlint:hotpath functions must be allocation-free",
	Run:  run,
}

// Directive marks a function as a checked hot path.
const Directive = "//ljqlint:hotpath"

// IsHotpath reports whether the function declaration carries the
// hotpath directive in its doc comment.
func IsHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), Directive) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHotpath(fd) {
				continue
			}
			check(pass, fd.Body)
		}
	}
	return nil
}

func check(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "function literal allocates a closure in a hotpath function")
			return false // its body is the closure's problem
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&composite literal escapes to the heap in a hotpath function")
					return false
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates in a hotpath function")
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates in a hotpath function")
			}
		case *ast.BinaryExpr:
			if x.Op.String() == "+" {
				if t := info.TypeOf(x); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(x.OpPos, "string concatenation allocates in a hotpath function")
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, x)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins: make, new, append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in a hotpath function")
			case "new":
				pass.Reportf(call.Pos(), "new allocates in a hotpath function")
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in a hotpath function")
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if src != nil && stringByteConv(dst, src) {
			pass.Reportf(call.Pos(), "conversion between string and byte/rune slice allocates in a hotpath function")
		}
		return
	}
	// Boxing: a concrete argument passed as an interface parameter.
	fn := analysis.Callee(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		pass.Reportf(arg.Pos(), "passing concrete %s as interface %s may allocate (boxing) in a hotpath function", at, pt)
	}
}

// stringByteConv reports whether converting src to dst crosses the
// string/byte-slice boundary (an allocating copy).
func stringByteConv(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Uint8 || e.Kind() == types.Rune || e.Kind() == types.Int32)
}
