// Package hotallocok holds allocation-free hotpath functions the
// hotalloc analyzer must accept without diagnostics.
package hotallocok

// mix is a pure-arithmetic hash step.
//
//ljqlint:hotpath
func mix(h, v uint64) uint64 {
	h ^= v * 0x9e3779b97f4a7c15
	h = (h << 31) | (h >> 33)
	return h * 0xff51afd7ed558ccd
}

// sum walks a slice without growing anything.
//
//ljqlint:hotpath
func sum(xs []uint64) uint64 {
	var h uint64
	for _, x := range xs {
		h = mix(h, x)
	}
	return h
}

// valueStruct builds a plain value composite: stack-allocated.
//
//ljqlint:hotpath
func valueStruct(a, b uint64) uint64 {
	p := struct{ x, y uint64 }{a, b}
	return p.x + p.y
}

// reuse writes into caller-owned scratch without growing it.
//
//ljqlint:hotpath
func reuse(scratch []uint64, v uint64) {
	for i := range scratch {
		scratch[i] = v
	}
}

// budgeted keeps one amortized append under an explicit allow.
//
//ljqlint:hotpath
func budgeted(scratch []uint64, v uint64) []uint64 {
	//ljqlint:allow hotalloc -- amortized growth into caller-owned scratch, ceiling enforced by ALLOC_BUDGETS.json
	return append(scratch, v)
}
