// Package hotalloctest exercises the hotalloc analyzer: annotated
// hotpath functions must be allocation-free.
package hotalloctest

func sink(any) {}

var global []uint64

// sliceLit builds a slice literal per call.
//
//ljqlint:hotpath
func sliceLit(a, b uint64) {
	global = []uint64{a, b} // want `slice literal allocates in a hotpath function`
}

// escape leaks a struct pointer.
//
//ljqlint:hotpath
func escape() *struct{ x int } {
	return &struct{ x int }{x: 1} // want `&composite literal escapes to the heap in a hotpath function`
}

// grow appends into a global.
//
//ljqlint:hotpath
func grow(v uint64) {
	global = append(global, v) // want `append may grow its backing array in a hotpath function`
}

// makes allocates a fresh map.
//
//ljqlint:hotpath
func makes() map[uint64]int {
	return make(map[uint64]int) // want `make allocates in a hotpath function`
}

// closure allocates a capturing closure.
//
//ljqlint:hotpath
func closure(v uint64) func() uint64 {
	return func() uint64 { return v } // want `function literal allocates a closure in a hotpath function`
}

// boxes passes a concrete int as interface{}.
//
//ljqlint:hotpath
func boxes(v int) {
	sink(v) // want `passing concrete int as interface .* may allocate \(boxing\) in a hotpath function`
}

// concat builds a string per call.
//
//ljqlint:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation allocates in a hotpath function`
}

// stringify crosses the string/[]byte boundary.
//
//ljqlint:hotpath
func stringify(b []byte) string {
	return string(b) // want `conversion between string and byte/rune slice allocates in a hotpath function`
}

// unannotated does all of the above but carries no directive: silent.
func unannotated(a, b uint64) {
	global = append(global, a, b)
	sink(a)
}
