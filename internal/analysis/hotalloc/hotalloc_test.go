package hotalloc_test

import (
	"testing"

	"joinopt/internal/analysis/analysistest"
	"joinopt/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotalloctest", "hotallocok")
}
