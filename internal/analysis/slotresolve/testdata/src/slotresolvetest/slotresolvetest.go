// Package slotresolvetest exercises the slotresolve analyzer: every
// breaker Allow that returns true claims a slot that must resolve
// exactly once on all paths.
package slotresolvetest

import "errors"

var errNo = errors.New("no")

// Breaker mimics internal/client's circuit breaker surface.
type Breaker struct{ n int }

func (b *Breaker) Allow() bool { return b.n > 0 }
func (b *Breaker) Success()    {}
func (b *Breaker) Failure()    {}
func (b *Breaker) Cancel()     {}

// Health mimics internal/cluster's per-peer breaker view.
type Health struct{}

func (h *Health) Allow(peer string) bool     { return peer != "" }
func (h *Health) ReportSuccess(peer string)  {}
func (h *Health) ReportFailure(peer string)  {}
func (h *Health) ReportCancelled(peer string) {}

// leakOnEarlyReturn drops the slot on the error return path.
func leakOnEarlyReturn(b *Breaker, work func() error) error {
	if !b.Allow() { // want `slot may be claimed here but not resolved on every path`
		return errNo
	}
	if err := work(); err != nil {
		return err // no Failure here: the claim leaks
	}
	b.Success()
	return nil
}

// discarded throws away the Allow result, losing any claimed slot.
func discarded(b *Breaker) {
	b.Allow() // want `result of b.Allow\(\) discarded`
}

// leakOnPanic resolves on the normal path but not the panic path.
func leakOnPanic(b *Breaker, v int) {
	if b.Allow() { // want `slot may be claimed here but not resolved on every path`
		if v < 0 {
			panic("negative")
		}
		b.Success()
	}
}

// doubleResolve resolves the same slot twice on the same path.
func doubleResolve(b *Breaker) {
	if b.Allow() {
		b.Success()
		b.Cancel() // want `slot already resolved on every path reaching this call`
	}
}

// wrongPeer resolves a different peer's slot than it claimed.
func wrongPeer(h *Health, a, b string) {
	if h.Allow(a) { // want `slot may be claimed here but not resolved on every path`
		h.ReportSuccess(b)
	}
}

// boundLeak binds the result but never resolves the claim.
func boundLeak(b *Breaker, work func()) {
	ok := b.Allow() // want `slot may be claimed here but not resolved on every path`
	if ok {
		work()
	}
}
