// Package slotresolveok holds clean breaker-slot patterns the
// slotresolve analyzer must accept without diagnostics.
package slotresolveok

// Breaker mimics internal/client's circuit breaker surface.
type Breaker struct{ n int }

func (b *Breaker) Allow() bool { return b.n > 0 }
func (b *Breaker) Success()    {}
func (b *Breaker) Failure()    {}
func (b *Breaker) Cancel()     {}

// Health mimics internal/cluster's per-peer breaker view.
type Health struct{}

func (h *Health) Allow(peer string) bool      { return peer != "" }
func (h *Health) ReportSuccess(peer string)   {}
func (h *Health) ReportFailure(peer string)   {}
func (h *Health) ReportCancelled(peer string) {}

// allPaths resolves on success, failure and guard-rejected paths.
func allPaths(b *Breaker, work func() error) error {
	if !b.Allow() {
		return nil
	}
	if err := work(); err != nil {
		b.Failure()
		return err
	}
	b.Success()
	return nil
}

// deferredCancel resolves through a defer, covering panic exits too.
func deferredCancel(b *Breaker, work func()) {
	if !b.Allow() {
		return
	}
	defer b.Cancel()
	work()
}

// transferToCaller hands the claim to the caller: the wrapper pattern
// used by Health.Allow around the per-peer breakers.
type Gate struct {
	open bool
	b    *Breaker
}

func (g *Gate) Allow() bool {
	return g.open && g.b.Allow()
}

// probeLoop claims and resolves per iteration, keyed by peer.
func probeLoop(h *Health, peers []string, probe func(string) error) {
	for _, p := range peers {
		if !h.Allow(p) {
			continue
		}
		if probe(p) != nil {
			h.ReportFailure(p)
		} else {
			h.ReportSuccess(p)
		}
	}
}

// reap is a loser-reaping helper: calling it resolves live claims via
// the one-level interprocedural summary.
func reap(h *Health, peers []string) {
	for _, p := range peers {
		h.ReportCancelled(p)
	}
}

func hedged(h *Health, peers []string) {
	var launched []string
	for _, p := range peers {
		if !h.Allow(p) {
			continue
		}
		launched = append(launched, p)
	}
	reap(h, launched)
}

// asyncResolve resolves inside a goroutine launched on the claiming
// path; the lexical-resolution heuristic credits it.
func asyncResolve(b *Breaker, work func() error) {
	if !b.Allow() {
		return
	}
	go func() {
		if err := work(); err != nil {
			b.Failure()
		} else {
			b.Success()
		}
	}()
}

// boundFlag resolves through the bound result variable's branches.
func boundFlag(b *Breaker, work func()) {
	ok := b.Allow()
	if !ok {
		return
	}
	work()
	b.Success()
}
