// Package slotresolve checks the circuit-breaker slot contract: every
// call to a breaker-style Allow method that returns true claims a slot
// that must be resolved exactly once — by Success, Failure or Cancel
// (or their Report* forms) — on every path out of the function,
// including early returns and explicit panics. In the half-open state
// Allow grants the single probe slot; leaking it parks the breaker
// half-open forever, a permanent fail-fast outage.
//
// What counts as a claim: a call to a method named Allow (or allow)
// returning a single bool, on a receiver whose method set also carries
// at least one resolution method (Success/Failure/Cancel,
// success/failure/cancelSlot, or ReportSuccess/ReportFailure/
// ReportCancelled). Slots are keyed by the receiver expression plus
// the call arguments, so h.Allow(peer) is resolved by
// h.ReportFailure(peer) but not by h.ReportFailure(other).
//
// The analysis is path-sensitive over the package's CFGs: an
// `if !b.Allow() { return }` guard claims only on the fallthrough
// edge, a bool variable bound to the Allow result is tracked through
// branches, and `return b.Allow()` transfers the obligation to the
// caller (which is how wrapper methods like Health.Allow stay clean).
// Deferred resolution calls count on every exit path. One level of
// interprocedural transfer: calling a same-package function whose body
// resolves slots (e.g. a loser-reaping helper) is treated as resolving
// the live claims. Claims made inside a function literal are analyzed
// in the literal's own CFG; resolutions inside literals launched on
// the claiming path are credited to it.
package slotresolve

import (
	"go/ast"
	"go/token"
	"go/types"

	"joinopt/internal/analysis"
	"joinopt/internal/analysis/cfg"
)

// Analyzer is the slotresolve analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "slotresolve",
	Doc:  "breaker Allow slots must resolve exactly once on all paths",
	Run:  run,
}

var resolutionNames = map[string]bool{
	"Success": true, "Failure": true, "Cancel": true,
	"success": true, "failure": true, "cancelSlot": true,
	"ReportSuccess": true, "ReportFailure": true, "ReportCancelled": true,
}

// claimInfo tracks one slot's status on the current path set.
type claimInfo struct {
	pos      token.Pos // position of the claiming Allow call
	call     string    // source text of the claiming call
	resolved bool      // true once resolved on every path seen so far
}

// state is the dataflow lattice value: live slots plus bool variables
// bound to Allow results. nil means "unreached".
type state struct {
	claims map[string]claimInfo
	binds  map[*types.Var]bindInfo
}

type bindInfo struct {
	key  string
	pos  token.Pos
	call string
}

func newState() *state {
	return &state{claims: map[string]claimInfo{}, binds: map[*types.Var]bindInfo{}}
}

func (s *state) clone() *state {
	out := newState()
	for k, v := range s.claims {
		out.claims[k] = v
	}
	for k, v := range s.binds {
		out.binds[k] = v
	}
	return out
}

func run(pass *analysis.Pass) error {
	a := &checker{pass: pass, resolvers: collectResolvers(pass)}
	for _, file := range pass.Files {
		analysis.WalkFuncs(file, func(node ast.Node, body *ast.BlockStmt) {
			a.checkFunc(body)
		})
		a.reportDiscards(file)
	}
	return nil
}

type checker struct {
	pass      *analysis.Pass
	resolvers map[*types.Func]bool
	reported  map[token.Pos]bool
}

// collectResolvers finds same-package functions whose bodies resolve
// slots, for one level of interprocedural transfer.
func collectResolvers(pass *analysis.Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if _, ok := resolutionCall(pass.TypesInfo, call); ok {
						found = true
					}
				}
				return true
			})
			if found {
				out[obj] = true
			}
		}
	}
	return out
}

// reportDiscards flags bare-statement Allow calls: the bool result is
// the slot handle, so discarding it leaks any claim it made.
func (c *checker) reportDiscards(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
			if _, ok := claimCall(c.pass.TypesInfo, call); ok {
				c.pass.Reportf(call.Pos(), "result of %s discarded: a claimed slot would be leaked", types.ExprString(call))
			}
		}
		return true
	})
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	g := cfg.Build(body)
	prob := cfg.Problem[*state]{
		Entry:        newState(),
		Bottom:       func() *state { return nil },
		Transfer:     c.transfer,
		TransferEdge: c.transferEdge,
		Merge:        merge,
		Equal:        equal,
	}
	res := cfg.Forward(g, prob)
	c.reported = map[token.Pos]bool{}
	for _, exit := range []*cfg.Block{g.Exit, g.Panic} {
		s := res.In[exit]
		if s == nil {
			continue
		}
		for _, ci := range s.claims {
			if ci.resolved || c.reported[ci.pos] {
				continue
			}
			c.reported[ci.pos] = true
			c.pass.Reportf(ci.pos, "%s: slot may be claimed here but not resolved on every path (want exactly one Success/Failure/Cancel)", ci.call)
		}
	}
	// Deterministic re-walk from fixpoint inputs to flag slots resolved
	// a second time after already being resolved on every incoming path.
	for _, b := range g.Blocks {
		s := res.In[b]
		if s == nil {
			continue
		}
		s = s.clone()
		for _, n := range b.Nodes {
			c.flagDoubleResolve(n, s)
			s = c.transfer(n, s)
		}
	}
}

func (c *checker) flagDoubleResolve(n ast.Node, s *state) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, ok := resolutionCall(c.pass.TypesInfo, call)
		if !ok {
			return true
		}
		if ci, live := s.claims[key]; live && ci.resolved && !c.reported[call.Pos()] {
			c.reported[call.Pos()] = true
			c.pass.Reportf(call.Pos(), "%s: slot already resolved on every path reaching this call (a slot must resolve exactly once)", types.ExprString(call))
		}
		return true
	})
}

func (c *checker) transfer(n ast.Node, s *state) *state {
	if s == nil {
		return nil
	}
	// A defer registers its call for the exit paths; the CFG's
	// epilogue block replays it there, which is where it resolves.
	if _, ok := n.(*ast.DeferStmt); ok {
		return s
	}
	out := s.clone()
	if as, ok := n.(*ast.AssignStmt); ok {
		c.applyAssign(as, out)
	}
	// Resolutions anywhere in the node — including inside function
	// literals launched on this path, and in deferred calls (the CFG
	// lowers those into the epilogue block) — resolve matching slots.
	// Skip return statements' claim calls: `return b.Allow()` hands
	// the obligation to the caller.
	c.applyResolutions(n, out)
	return out
}

func (c *checker) applyAssign(as *ast.AssignStmt, s *state) {
	// `ok := b.Allow()` (or any RHS containing a direct claim call):
	// claim now, bind the result variable, and let branch edges on the
	// variable retract the claim on Allow==false paths.
	for i, rhs := range as.Rhs {
		calls := claimCallsIn(c.pass.TypesInfo, rhs)
		for _, cc := range calls {
			s.claims[cc.key] = claimInfo{pos: cc.pos, call: cc.text}
			if len(as.Rhs) == len(as.Lhs) && len(calls) == 1 {
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
						s.binds[v] = bindInfo{key: cc.key, pos: cc.pos, call: cc.text}
					} else if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
						s.binds[v] = bindInfo{key: cc.key, pos: cc.pos, call: cc.text}
					}
				}
			}
		}
	}
}

// applyResolutions marks slots resolved by any resolution call in the
// node's subtree. Claims inside return statements are never created in
// the first place (claimCallsIn only runs on assignments), which is
// what makes `return b.Allow()` an obligation transfer to the caller.
func (c *checker) applyResolutions(n ast.Node, s *state) {
	ast.Inspect(n, func(sub ast.Node) bool {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, ok := resolutionCall(c.pass.TypesInfo, call); ok {
			if ci, live := s.claims[key]; live {
				ci.resolved = true
				s.claims[key] = ci
			}
			return true
		}
		// One-level summary: a same-package helper that resolves slots
		// (reaping hedged losers, draining a result channel) resolves
		// the live claims.
		if fn := analysis.Callee(c.pass.TypesInfo, call); fn != nil && c.resolvers[fn] {
			for k, ci := range s.claims {
				ci.resolved = true
				s.claims[k] = ci
			}
		}
		return true
	})
}

func (c *checker) transferEdge(e cfg.Edge, s *state) *state {
	if s == nil || e.Cond == nil {
		return s
	}
	out := s.clone()
	c.applyCond(ast.Unparen(e.Cond), e.Branch, out)
	return out
}

// applyCond refines the state knowing cond evaluated to branch.
func (c *checker) applyCond(cond ast.Expr, branch bool, s *state) {
	switch x := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			c.applyCond(x.X, !branch, s)
		}
	case *ast.BinaryExpr:
		switch {
		case x.Op == token.LAND && branch:
			// Both conjuncts are true.
			c.applyCond(x.X, true, s)
			c.applyCond(x.Y, true, s)
		case x.Op == token.LOR && !branch:
			// Both disjuncts are false.
			c.applyCond(x.X, false, s)
			c.applyCond(x.Y, false, s)
		case x.Op == token.LOR && branch:
			// `a || b.Allow()`: the claim may or may not exist; keep
			// the conservative may-claim.
			c.applyCond(x.X, true, s)
			c.applyCond(x.Y, true, s)
		}
	case *ast.CallExpr:
		if cc, ok := claimCall(c.pass.TypesInfo, x); ok && branch {
			if _, exists := s.claims[cc.key]; !exists {
				s.claims[cc.key] = claimInfo{pos: cc.pos, call: cc.text}
			}
		}
	case *ast.Ident:
		v, _ := c.pass.TypesInfo.Uses[x].(*types.Var)
		if v == nil {
			return
		}
		b, bound := s.binds[v]
		if !bound {
			return
		}
		if branch {
			if _, exists := s.claims[b.key]; !exists {
				s.claims[b.key] = claimInfo{pos: b.pos, call: b.call}
			}
		} else {
			// Allow returned false on this edge: no slot was claimed.
			if ci, live := s.claims[b.key]; live && !ci.resolved {
				delete(s.claims, b.key)
			}
		}
	}
}

func merge(a, b *state) *state {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := newState()
	for k, av := range a.claims {
		if bv, ok := b.claims[k]; ok {
			m := av
			m.resolved = av.resolved && bv.resolved
			if bv.pos < m.pos {
				m.pos, m.call = bv.pos, bv.call
			}
			out.claims[k] = m
			continue
		}
		if !av.resolved {
			out.claims[k] = av // may-unresolved survives the join
		}
	}
	for k, bv := range b.claims {
		if _, ok := a.claims[k]; !ok && !bv.resolved {
			out.claims[k] = bv
		}
	}
	for k, v := range a.binds {
		out.binds[k] = v
	}
	for k, v := range b.binds {
		out.binds[k] = v
	}
	return out
}

func equal(a, b *state) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.claims) != len(b.claims) || len(a.binds) != len(b.binds) {
		return false
	}
	for k, av := range a.claims {
		if bv, ok := b.claims[k]; !ok || av != bv {
			return false
		}
	}
	for k, av := range a.binds {
		if bv, ok := b.binds[k]; !ok || av != bv {
			return false
		}
	}
	return true
}

type claimRef struct {
	key  string
	pos  token.Pos
	text string
}

// claimCall recognizes a slot-claiming call: a method named Allow (or
// allow) returning a single bool, whose receiver type also has at
// least one resolution method.
func claimCall(info *types.Info, call *ast.CallExpr) (claimRef, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return claimRef{}, false
	}
	fn := analysis.Callee(info, call)
	if fn == nil || (fn.Name() != "Allow" && fn.Name() != "allow") {
		return claimRef{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return claimRef{}, false
	}
	if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
		return claimRef{}, false
	}
	recvT := info.TypeOf(sel.X)
	if recvT == nil || !hasAnyMethod(recvT, resolutionNames) {
		return claimRef{}, false
	}
	return claimRef{
		key:  slotKey(sel.X, call.Args),
		pos:  call.Pos(),
		text: types.ExprString(call),
	}, true
}

// resolutionCall recognizes a slot-resolving call and returns its slot
// key. The receiver must also carry an Allow/allow method, so that
// unrelated Cancel/Close-style methods don't count.
func resolutionCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn := analysis.Callee(info, call)
	if fn == nil || !resolutionNames[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recvT := info.TypeOf(sel.X)
	if recvT == nil || !hasAnyMethod(recvT, map[string]bool{"Allow": true, "allow": true}) {
		return "", false
	}
	return slotKey(sel.X, call.Args), true
}

// slotKey names a slot by its receiver expression and arguments:
// h.Allow(peer) and h.ReportFailure(peer) share a key; h.Allow(peer)
// and h.ReportFailure(other) do not.
func slotKey(recv ast.Expr, args []ast.Expr) string {
	key := types.ExprString(recv) + "|"
	for i, a := range args {
		if i > 0 {
			key += ","
		}
		key += types.ExprString(a)
	}
	return key
}

// claimCallsIn finds direct claim calls in e, not descending into
// function literals (their claims belong to the literal's own CFG).
func claimCallsIn(info *types.Info, e ast.Expr) []claimRef {
	var out []claimRef
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if cc, ok := claimCall(info, call); ok {
				out = append(out, cc)
			}
		}
		return true
	})
	return out
}

// hasAnyMethod reports whether t's (pointer) method set contains any
// of names.
func hasAnyMethod(t types.Type, names map[string]bool) bool {
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, ok := t.(*types.Pointer); !ok {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if names[ms.At(i).Obj().Name()] {
			return true
		}
	}
	return false
}
