package slotresolve_test

import (
	"testing"

	"joinopt/internal/analysis/analysistest"
	"joinopt/internal/analysis/slotresolve"
)

func TestSlotResolve(t *testing.T) {
	analysistest.Run(t, "testdata", slotresolve.Analyzer, "slotresolvetest", "slotresolveok")
}
