// Package analysistest runs ljqlint analyzers over annotated fixture
// packages, in the style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<pkg>/ (GOPATH-style). Expected
// diagnostics are declared in the fixture source with trailing
// comments of the form
//
//	x := f() // want `regexp` `another regexp`
//
// Each backquoted regexp must match one diagnostic reported on that
// line, and every reported diagnostic must be matched by exactly one
// expectation. Fixture packages may import real module packages
// (e.g. joinopt/internal/cost) — they resolve against the enclosing
// module — as well as sibling fixture packages under src/.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"joinopt/internal/analysis"
)

// Run loads each fixture package below dir/src and applies the
// analyzer, comparing diagnostics against // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("testdata dir: %v", err)
	}
	loader.SetFixtureRoot(filepath.Join(abs, "src"))
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			p, err := loader.Load(pkg)
			if err != nil {
				t.Fatalf("load %s: %v", pkg, err)
			}
			findings, err := analysis.Run(p, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("run %s: %v", pkg, err)
			}
			check(t, p, findings)
		})
	}
}

// expectation is one // want regexp.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile("// want((?: +`[^`]*`)+)\\s*$")
var backquoted = regexp.MustCompile("`[^`]*`")

func collectExpectations(t *testing.T, p *analysis.Package) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Errorf("%s: malformed want comment: %s",
							p.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				posn := p.Fset.Position(c.Pos())
				for _, q := range backquoted.FindAllString(m[1], -1) {
					pat := q[1 : len(q)-1]
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, pat, err)
						continue
					}
					exps = append(exps, &expectation{file: posn.Filename, line: posn.Line, rx: rx})
				}
			}
		}
	}
	return exps
}

func check(t *testing.T, p *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	exps := collectExpectations(t, p)
	for _, f := range findings {
		if !claim(exps, f.Position, f.Message) {
			t.Errorf("unexpected diagnostic: %v", f)
		}
	}
	for _, e := range exps {
		if !e.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.rx)
		}
	}
}

func claim(exps []*expectation, posn token.Position, msg string) bool {
	for _, e := range exps {
		if !e.used && e.file == posn.Filename && e.line == posn.Line && e.rx.MatchString(msg) {
			e.used = true
			return true
		}
	}
	return false
}

// MustFindings is a convenience for driver tests: it fails unless the
// findings include one whose message matches pattern.
func MustFindings(t *testing.T, findings []analysis.Finding, pattern string) {
	t.Helper()
	rx := regexp.MustCompile(pattern)
	for _, f := range findings {
		if rx.MatchString(f.Message) {
			return
		}
	}
	t.Errorf("no finding matching %q in %v", pattern, findings)
}
