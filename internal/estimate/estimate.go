// Package estimate implements the cardinality arithmetic used by the
// optimizer: effective cardinalities after selections and intermediate
// result sizes for outer linear join trees.
//
// The estimation model is the classical one the paper relies on: an
// equi-join of operands with sizes n₁ and n₂ linked by predicates with
// combined join selectivity J produces n₁·n₂·J tuples, where J for a
// single predicate is 1/max(D_left, D_right) unless given explicitly.
// When a relation joins the current intermediate result through several
// edges, the selectivities of all of them multiply.
package estimate

import (
	"math"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
)

// Stats caches the per-relation statistics of one query so hot paths
// never re-derive them.
type Stats struct {
	query *catalog.Query
	graph *joingraph.Graph
	// card[i] is the effective cardinality of relation i after
	// selections.
	card []float64
	// static disables dynamic distinct-value propagation (see
	// UseStaticSelectivity).
	static bool
}

// NewStats computes the per-relation statistics for q over its join
// graph g.
func NewStats(q *catalog.Query, g *joingraph.Graph) *Stats {
	s := &Stats{
		query: q,
		graph: g,
		card:  make([]float64, q.NumRelations()),
	}
	for i := range q.Relations {
		s.card[i] = q.Relations[i].EffectiveCardinality()
	}
	return s
}

// UseStaticSelectivity switches the estimator to the classical static
// model: every edge contributes its fixed selectivity 1/max(D_l, D_r)
// regardless of the intermediate result's size. Static estimates depend
// only on the *set* of joined relations, never their order — the
// assumption System-R-style dynamic programming requires — whereas the
// default dynamic model propagates distinct values (an S-tuple result
// carries at most S distinct values) and is therefore order-sensitive
// whenever intermediate results shrink below a column's distinct count.
func (s *Stats) UseStaticSelectivity() { s.static = true }

// Dynamic reports whether distinct-value propagation is enabled.
func (s *Stats) Dynamic() bool { return !s.static }

// Query returns the underlying query.
func (s *Stats) Query() *catalog.Query { return s.query }

// Graph returns the underlying join graph.
func (s *Stats) Graph() *joingraph.Graph { return s.graph }

// Cardinality returns the effective cardinality of relation id.
func (s *Stats) Cardinality(id catalog.RelID) float64 { return s.card[id] }

// JoinSize returns the estimated size of joining an intermediate result
// of outerSize tuples (covering the relations marked in inSet) with base
// relation inner. Relations with no join edge into the set contribute a
// cross product (selectivity 1).
//
// By default the estimator propagates distinct values: an intermediate
// result of S tuples cannot carry more than S distinct values in any
// column, so the effective join selectivity of an edge whose prefix-side
// column had D distinct values is 1/max(min(D, S), D_inner). This is the
// effect the paper's §4.1 credits for criterion 3's win — small
// intermediate results crush distinct counts, which inflates later join
// results. The propagation makes estimates order-sensitive on
// collapsing trajectories; UseStaticSelectivity switches to the
// classical order-independent model (required by the DP baseline).
// Predicates carrying an explicit selectivity but no distinct counts
// always use that static selectivity.
func (s *Stats) JoinSize(outerSize float64, inSet joingraph.Bitset, inner catalog.RelID) float64 {
	sel := s.SelectivityInto(outerSize, inSet, inner)
	// Expected sizes are kept fractional (no one-tuple floor): clamping
	// would erase the cost differences between plans whose intermediate
	// results all collapse, flattening exactly the signal the search
	// strategies compete on.
	return outerSize * s.card[inner] * sel
}

// SelectivityInto returns the combined (dynamic) join selectivity of all
// edges linking relation inner to the prefix set, given the prefix's
// current size. See JoinSize for the model.
func (s *Stats) SelectivityInto(outerSize float64, inSet joingraph.Bitset, inner catalog.RelID) float64 {
	sel := 1.0
	s.graph.ForEachIncident(inner, inSet, func(e joingraph.Edge, other catalog.RelID) {
		// Histograms, when both sides carry aligned ones, dominate the
		// flat models: they capture skew neither distinct counts nor a
		// single selectivity can. Histogram selectivities are used
		// as-is in both estimator modes (they already encode the full
		// value distribution).
		if j, ok := e.FromHist.JoinSelectivity(e.ToHist); ok {
			sel *= j
			return
		}
		dInner, dOuter := e.FromDistinct, e.ToDistinct
		if e.From != inner {
			dInner, dOuter = dOuter, dInner
		}
		if dInner < 1 || dOuter < 1 {
			// No distinct statistics: use the static selectivity.
			sel *= e.Selectivity
			return
		}
		// residual preserves any selectivity beyond the distinct-count
		// model: merged parallel predicates and user-supplied explicit
		// selectivities. It is exactly 1 for a plain normalized edge,
		// so in static mode base·residual reproduces e.Selectivity.
		residual := e.Selectivity * math.Max(dInner, dOuter)
		if !s.static {
			dOuter = math.Min(dOuter, math.Max(outerSize, 1e-12))
		}
		sel *= residual / math.Max(dOuter, dInner)
	})
	return sel
}

// Prefix incrementally tracks the intermediate-result size of a growing
// join prefix. It is the workhorse of plan costing: Extend appends one
// relation, returning the (outer, inner, result) sizes of the join it
// induces.
type Prefix struct {
	stats *Stats
	inSet joingraph.Bitset
	size  float64
	n     int
}

// NewPrefix returns an empty prefix over the statistics.
func NewPrefix(s *Stats) *Prefix {
	return &Prefix{
		stats: s,
		inSet: joingraph.NewBitset(s.query.NumRelations()),
	}
}

// Reset empties the prefix for reuse.
func (p *Prefix) Reset() {
	p.inSet.Reset()
	p.size = 0
	p.n = 0
}

// Len returns the number of relations in the prefix.
func (p *Prefix) Len() int { return p.n }

// Size returns the current intermediate-result size (0 for an empty
// prefix; the base cardinality after one Extend).
func (p *Prefix) Size() float64 { return p.size }

// Contains reports whether relation id is already in the prefix.
func (p *Prefix) Contains(id catalog.RelID) bool { return p.inSet.Test(id) }

// InSet exposes the membership bitset; callers must not modify it.
func (p *Prefix) InSet() joingraph.Bitset { return p.inSet }

// Extend appends relation id. For the first relation it returns
// (0, card, card) with no join. For subsequent relations it returns the
// outer size before the join, the inner (base) cardinality, and the
// result size after the join.
func (p *Prefix) Extend(id catalog.RelID) (outer, inner, result float64) {
	inner = p.stats.Cardinality(id)
	if p.n == 0 {
		p.size = inner
		p.inSet.Set(id)
		p.n = 1
		return 0, inner, inner
	}
	outer = p.size
	result = p.stats.JoinSize(outer, p.inSet, id)
	p.size = result
	p.inSet.Set(id)
	p.n++
	return outer, inner, result
}

// CopyFrom overwrites p's state with a copy of src's. Both prefixes must
// belong to the same Stats. Used to fork a base prefix cheaply when many
// alternative extensions of the same prefix are priced (local
// improvement's cluster enumeration).
func (p *Prefix) CopyFrom(src *Prefix) {
	copy(p.inSet, src.inSet)
	p.size = src.size
	p.n = src.n
}

// Joins reports whether relation id joins (via at least one predicate)
// with some relation already in the prefix.
func (p *Prefix) Joins(id catalog.RelID) bool {
	return p.stats.Graph().JoinsInto(id, p.inSet)
}
