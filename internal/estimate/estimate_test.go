package estimate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
)

// build wires a query into Stats.
func build(q *catalog.Query) *Stats {
	q.Normalize()
	return NewStats(q, joingraph.New(q))
}

func chain3() *catalog.Query {
	return &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 100},
			{Cardinality: 200, Selections: []catalog.Selection{{Selectivity: 0.5}}},
			{Cardinality: 300},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 50, RightDistinct: 100},
			{Left: 1, Right: 2, LeftDistinct: 20, RightDistinct: 30},
		},
	}
}

func TestCardinality(t *testing.T) {
	st := build(chain3())
	if st.Cardinality(0) != 100 {
		t.Fatalf("card 0: %g", st.Cardinality(0))
	}
	if st.Cardinality(1) != 100 { // 200 × 0.5
		t.Fatalf("card 1 after selection: %g", st.Cardinality(1))
	}
}

func TestJoinSizeStaticFallback(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{{Cardinality: 100}, {Cardinality: 100}},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, Selectivity: 0.25},
		},
	}
	st := build(q)
	inSet := makeBitset(2, 0)
	got := st.JoinSize(100, inSet, 1)
	if got != 100*100*0.25 {
		t.Fatalf("static selectivity path: got %g, want 2500", got)
	}
}

func TestJoinSizeDynamicDistinct(t *testing.T) {
	st := build(chain3())
	inSet := makeBitset(3, 0)
	// Outer size 100 ≥ D_left=50, so J = 1/max(50 capped at 100? no:
	// min(Douter=50, outer=100)=50, max(50, Dinner=100) = 100 → J=0.01.
	got := st.JoinSize(100, inSet, 1)
	want := 100 * st.Cardinality(1) / 100
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("dynamic J: got %g, want %g", got, want)
	}
	// A tiny outer crushes the outer-side distinct count: outer=2 →
	// min(50,2)=2, max(2,100)=100 → same J here; crush the other way:
	inSet = makeBitset(3, 1)
	// joining relation 0 (D=50 on its side, prefix side D=100) with a
	// 2-tuple prefix: min(100,2)=2, max(2, 50)=50 → J = 1/50.
	got = st.JoinSize(2, inSet, 0)
	want = 2 * 100.0 / 50
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("crushed outer distinct: got %g, want %g", got, want)
	}
}

func TestJoinSizeCrossProduct(t *testing.T) {
	st := build(chain3())
	inSet := makeBitset(3, 0)
	got := st.JoinSize(100, inSet, 2) // no edge 0–2
	if got != 100*300 {
		t.Fatalf("cross product: got %g, want 30000", got)
	}
}

func TestPrefixExtend(t *testing.T) {
	st := build(chain3())
	p := NewPrefix(st)
	outer, inner, result := p.Extend(0)
	if outer != 0 || inner != 100 || result != 100 {
		t.Fatalf("first extend: %g %g %g", outer, inner, result)
	}
	if p.Len() != 1 || !p.Contains(0) || p.Contains(1) {
		t.Fatal("prefix bookkeeping wrong after first extend")
	}
	outer, inner, result = p.Extend(1)
	if outer != 100 || inner != 100 {
		t.Fatalf("second extend inputs: %g %g", outer, inner)
	}
	if result != p.Size() {
		t.Fatalf("size mismatch: %g vs %g", result, p.Size())
	}
}

func TestPrefixReset(t *testing.T) {
	st := build(chain3())
	p := NewPrefix(st)
	p.Extend(0)
	p.Extend(1)
	p.Reset()
	if p.Len() != 0 || p.Size() != 0 || p.Contains(0) {
		t.Fatal("reset did not clear state")
	}
}

func TestPrefixCopyFrom(t *testing.T) {
	st := build(chain3())
	a := NewPrefix(st)
	a.Extend(0)
	a.Extend(1)
	b := NewPrefix(st)
	b.CopyFrom(a)
	if b.Len() != a.Len() || b.Size() != a.Size() || !b.Contains(1) {
		t.Fatal("CopyFrom incomplete")
	}
	// Diverge: extending b must not affect a.
	b.Extend(2)
	if a.Contains(2) || a.Len() != 2 {
		t.Fatal("CopyFrom aliases state")
	}
}

func TestPrefixJoins(t *testing.T) {
	st := build(chain3())
	p := NewPrefix(st)
	p.Extend(0)
	if !p.Joins(1) || p.Joins(2) {
		t.Fatal("Joins frontier wrong")
	}
}

// TestStaticSizeOrderIndependence is the invariant the DP baseline
// relies on: under the static estimator, the estimated size of a join
// result depends only on the SET of joined relations, never on their
// order.
func TestStaticSizeOrderIndependence(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%8)
		rng := rand.New(rand.NewSource(seed))
		q := &catalog.Query{}
		for i := 0; i < n; i++ {
			q.Relations = append(q.Relations, catalog.Relation{Cardinality: int64(1 + rng.Intn(500))})
		}
		for i := 1; i < n; i++ {
			q.Predicates = append(q.Predicates, catalog.Predicate{
				Left: catalog.RelID(rng.Intn(i)), Right: catalog.RelID(i),
				LeftDistinct:  float64(1 + rng.Intn(50)),
				RightDistinct: float64(1 + rng.Intn(50)),
			})
		}
		st := build(q)
		st.UseStaticSelectivity()
		// Two random orders of all relations.
		perm1 := rng.Perm(n)
		perm2 := rng.Perm(n)
		size := func(perm []int) float64 {
			p := NewPrefix(st)
			for _, r := range perm {
				p.Extend(catalog.RelID(r))
			}
			return p.Size()
		}
		s1, s2 := size(perm1), size(perm2)
		if s1 == 0 && s2 == 0 {
			return true
		}
		return math.Abs(s1-s2)/math.Max(s1, s2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicCrushInflatesLaterJoins checks the dynamic estimator's
// defining behaviour (the paper's §4.1 intuition): an intermediate
// result smaller than a column's distinct count raises the effective
// selectivity of the next join above its static value.
func TestDynamicCrushInflatesLaterJoins(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{{Cardinality: 1000}, {Cardinality: 1000}},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 500, RightDistinct: 200},
		},
	}
	st := build(q)
	inSet := makeBitset(2, 0)
	static := 1.0 / 500 // static: 1/max(500,200)
	// A 10-tuple prefix crushes the outer-side distinct count to 10:
	// J = 1/max(min(500,10), 200) = 1/200 > 1/500.
	dyn := st.SelectivityInto(10, inSet, 1)
	if math.Abs(dyn-1.0/200) > 1e-12 {
		t.Fatalf("dynamic J: got %g, want %g", dyn, 1.0/200)
	}
	if dyn <= static {
		t.Fatal("dynamic selectivity did not inflate after crush")
	}
	// A large prefix leaves the static value intact.
	dynBig := st.SelectivityInto(1e6, inSet, 1)
	if math.Abs(dynBig-static) > 1e-12 {
		t.Fatalf("large-prefix J: got %g, want static %g", dynBig, static)
	}
	// Static mode ignores the prefix size entirely.
	st.UseStaticSelectivity()
	if got := st.SelectivityInto(10, inSet, 1); math.Abs(got-static) > 1e-12 {
		t.Fatalf("static mode J: got %g, want %g", got, static)
	}
	if st.Dynamic() {
		t.Fatal("Dynamic() should report false after UseStaticSelectivity")
	}
}

func TestSelectivityIntoMultiEdge(t *testing.T) {
	// Triangle: joining the third relation crosses two edges; their
	// selectivities multiply.
	q := &catalog.Query{
		Relations: []catalog.Relation{{Cardinality: 100}, {Cardinality: 100}, {Cardinality: 100}},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, Selectivity: 0.5},
			{Left: 0, Right: 2, Selectivity: 0.1},
			{Left: 1, Right: 2, Selectivity: 0.2},
		},
	}
	st := build(q)
	inSet := makeBitset(3, 0, 1)
	got := st.SelectivityInto(100, inSet, 2)
	if math.Abs(got-0.1*0.2) > 1e-12 {
		t.Fatalf("multi-edge selectivity: got %g, want 0.02", got)
	}
}

// makeBitset builds a joingraph.Bitset of capacity n with the given members set.
func makeBitset(n int, members ...int) joingraph.Bitset {
	b := joingraph.NewBitset(n)
	for _, m := range members {
		b.Set(catalog.RelID(m))
	}
	return b
}
