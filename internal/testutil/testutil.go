// Package testutil holds the seeded query/catalog builders shared by
// the test suites of search, heuristics, dp and core. Before it
// existed each package carried its own near-identical copy of
// randomQuery/staticEval; the copies had drifted in cosmetic ways
// (edge-density constants, distinct-value ranges) that none of the
// callers — all property tests over *valid* random inputs — actually
// depended on. This package is the single canonical version.
//
// Everything here is deterministic in the caller-supplied *rand.Rand:
// no global randomness, no wall-clock, so the builders are safe inside
// the repo's byte-identical-trace determinism tests.
package testutil

import (
	"math/rand"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/workload"
)

// RandomQuery builds a random *connected* query with n relations: a
// random spanning tree (edge i attaches relation i to a random earlier
// relation) plus about n/4 extra edges, giving graphs that range from
// trees to moderately cyclic — the regime the paper's strategies are
// exercised in. Cardinalities are 2..2001, per-side distinct values
// 1..200.
func RandomQuery(rng *rand.Rand, n int) *catalog.Query {
	q := &catalog.Query{}
	for i := 0; i < n; i++ {
		q.Relations = append(q.Relations, catalog.Relation{Cardinality: int64(2 + rng.Intn(2000))})
	}
	for i := 1; i < n; i++ {
		q.Predicates = append(q.Predicates, catalog.Predicate{
			Left: catalog.RelID(rng.Intn(i)), Right: catalog.RelID(i),
			LeftDistinct:  float64(1 + rng.Intn(200)),
			RightDistinct: float64(1 + rng.Intn(200)),
		})
	}
	for k := 0; k < n/4; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			q.Predicates = append(q.Predicates, catalog.Predicate{
				Left: catalog.RelID(a), Right: catalog.RelID(b),
				LeftDistinct: 7, RightDistinct: 7,
			})
		}
	}
	q.Normalize()
	return q
}

// BenchQuery generates the workload-model query used by core's
// benchmarks and integration tests (the paper's relation-class mix).
func BenchQuery(n int, seed int64) *catalog.Query {
	return workload.Default().Generate(n, rand.New(rand.NewSource(seed)))
}

// Eval wires q into a memory-model evaluator with an unlimited budget
// and returns it with the first (usually only) connected component.
func Eval(q *catalog.Query) (*plan.Evaluator, []catalog.RelID) {
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
	return eval, g.Components()[0]
}

// StaticEval is Eval with the estimator pinned to static selectivity
// mode — the order-independent regime required for dp.Optimal to be an
// exact oracle.
func StaticEval(q *catalog.Query) (*plan.Evaluator, []catalog.RelID) {
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
	return eval, g.Components()[0]
}

// StaticRandomEval composes RandomQuery and StaticEval: a static-mode
// evaluator over a fresh random connected query.
func StaticRandomEval(rng *rand.Rand, n int) (*plan.Evaluator, []catalog.RelID) {
	return StaticEval(RandomQuery(rng, n))
}
