package catalog

import (
	"math"
	"testing"
)

func uniformHist(domain int64, buckets int, rows float64) *Histogram {
	h := &Histogram{Domain: domain, Counts: make([]float64, buckets)}
	for i := range h.Counts {
		h.Counts[i] = rows / float64(buckets)
	}
	return h
}

func TestHistogramValidate(t *testing.T) {
	var nilH *Histogram
	if err := nilH.Validate(); err != nil {
		t.Fatal("nil histogram must validate (absent)")
	}
	if err := (&Histogram{Domain: 0, Counts: []float64{1}}).Validate(); err == nil {
		t.Fatal("zero domain accepted")
	}
	if err := (&Histogram{Domain: 5}).Validate(); err == nil {
		t.Fatal("no buckets accepted")
	}
	if err := (&Histogram{Domain: 2, Counts: []float64{1, 1, 1}}).Validate(); err == nil {
		t.Fatal("more buckets than domain accepted")
	}
	if err := (&Histogram{Domain: 5, Counts: []float64{1, -1}}).Validate(); err == nil {
		t.Fatal("negative count accepted")
	}
	if err := uniformHist(100, 10, 500).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRowsAndWidth(t *testing.T) {
	h := &Histogram{Domain: 10, Counts: []float64{3, 4, 5}}
	if h.Rows() != 12 {
		t.Fatalf("rows %g", h.Rows())
	}
	// 10/3 = 3 wide, last bucket absorbs remainder: 3,3,4.
	if h.bucketWidth(0) != 3 || h.bucketWidth(2) != 4 {
		t.Fatalf("widths %g %g", h.bucketWidth(0), h.bucketWidth(2))
	}
}

// TestUniformHistogramMatchesContainment: for uniform data the
// histogram selectivity must agree with the classical 1/D.
func TestUniformHistogramMatchesContainment(t *testing.T) {
	const d = 100
	l := uniformHist(d, 10, 1000)
	r := uniformHist(d, 10, 500)
	j, ok := l.JoinSelectivity(r)
	if !ok {
		t.Fatal("aligned histograms rejected")
	}
	if math.Abs(j-1.0/d) > 1e-12 {
		t.Fatalf("uniform histogram J = %g, want %g", j, 1.0/d)
	}
}

// TestSkewRaisesSelectivity: concentrating both sides on few values
// must raise the join selectivity above the uniform 1/D.
func TestSkewRaisesSelectivity(t *testing.T) {
	const d = 100
	skewed := &Histogram{Domain: d, Counts: make([]float64, 10)}
	skewed.Counts[0] = 900 // hot bucket
	for i := 1; i < 10; i++ {
		skewed.Counts[i] = 100.0 / 9
	}
	j, ok := skewed.JoinSelectivity(skewed)
	if !ok {
		t.Fatal("rejected")
	}
	if j <= 1.0/d {
		t.Fatalf("skewed J %g not above uniform %g", j, 1.0/d)
	}
}

func TestJoinSelectivityMisaligned(t *testing.T) {
	a := uniformHist(100, 10, 100)
	b := uniformHist(100, 5, 100)
	if _, ok := a.JoinSelectivity(b); ok {
		t.Fatal("misaligned buckets accepted")
	}
	c := uniformHist(50, 10, 100)
	if _, ok := a.JoinSelectivity(c); ok {
		t.Fatal("misaligned domains accepted")
	}
	var nilH *Histogram
	if _, ok := nilH.JoinSelectivity(a); ok {
		t.Fatal("nil accepted")
	}
	empty := &Histogram{Domain: 100, Counts: make([]float64, 10)}
	if _, ok := a.JoinSelectivity(empty); ok {
		t.Fatal("empty rows accepted")
	}
}

func TestDistinctEstimate(t *testing.T) {
	// Dense uniform data: nearly every value occupied.
	h := uniformHist(100, 10, 10000)
	if d := h.DistinctEstimate(); d < 95 || d > 100 {
		t.Fatalf("dense distinct estimate %g", d)
	}
	// Sparse: ~c values occupied when c ≪ domain.
	sparse := uniformHist(100000, 10, 50)
	if d := sparse.DistinctEstimate(); d < 40 || d > 51 {
		t.Fatalf("sparse distinct estimate %g", d)
	}
	// Degenerate floors at 1.
	empty := &Histogram{Domain: 10, Counts: make([]float64, 2)}
	if empty.DistinctEstimate() != 1 {
		t.Fatal("empty floor")
	}
}

func TestNormalizeSwapsHistograms(t *testing.T) {
	l := uniformHist(10, 2, 5)
	r := uniformHist(20, 2, 5)
	p := Predicate{Left: 3, Right: 1, LeftDistinct: 2, RightDistinct: 4, LeftHist: l, RightHist: r}
	p.Normalize()
	if p.LeftHist != r || p.RightHist != l {
		t.Fatal("histograms not swapped with endpoints")
	}
}

func TestValidateChecksHistograms(t *testing.T) {
	q := validQuery()
	q.Predicates[0].LeftHist = &Histogram{Domain: 0, Counts: []float64{1}}
	if err := q.Validate(); err == nil {
		t.Fatal("bad histogram accepted")
	}
}
