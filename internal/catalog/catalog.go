// Package catalog defines the statistical metadata a query optimizer
// consumes: relations with cardinalities, selection predicates with
// selectivities, join columns with distinct-value counts, and join
// predicates with join selectivities.
//
// The catalog follows the problem formulation of Swami (SIGMOD 1989):
// selections and projections are assumed to have been pushed down already,
// so they appear here only as statistics that shrink effective
// cardinalities; the optimizer's job is reduced to choosing a join order.
package catalog

import (
	"errors"
	"fmt"
	"math"
)

// RelID identifies a relation inside a Query by index (0-based).
type RelID int

// Selection is a selection predicate applied to a single relation before
// any joins. Only its selectivity matters to the optimizer.
type Selection struct {
	// Selectivity is the fraction of tuples that satisfy the predicate,
	// in (0, 1].
	Selectivity float64
}

// Relation carries the optimizer-visible statistics of one base relation.
type Relation struct {
	// Name is a human-readable identifier used in plan explanations.
	Name string
	// Cardinality is the number of tuples before selections.
	Cardinality int64
	// Selections are the selection predicates applied to this relation.
	Selections []Selection
}

// EffectiveCardinality returns the cardinality after applying all
// selection predicates, never less than 1 (an empty input would make
// every plan free and the optimization vacuous; the paper's generator
// keeps relations non-empty).
func (r *Relation) EffectiveCardinality() float64 {
	card := float64(r.Cardinality)
	for _, s := range r.Selections {
		card *= s.Selectivity
	}
	if card < 1 {
		return 1
	}
	return card
}

// Predicate is an equi-join predicate linking two relations.
type Predicate struct {
	// Left and Right are the joined relations. Left < Right by convention
	// (Normalize enforces it).
	Left, Right RelID
	// LeftDistinct and RightDistinct are the distinct-value counts of the
	// join columns on each side, after selections.
	LeftDistinct, RightDistinct float64
	// Selectivity is the join selectivity J: |L ⋈ R| = |L|·|R|·J.
	// If zero, it is derived as 1/max(LeftDistinct, RightDistinct).
	Selectivity float64
	// LeftHist and RightHist optionally carry equi-width frequency
	// histograms of the join columns. When both are present and aligned
	// the estimator prefers them over the distinct-count model — they
	// capture skew the flat model cannot. See Histogram.
	LeftHist, RightHist *Histogram
}

// Normalize orders the endpoints so Left < Right and fills a missing
// Selectivity from the distinct-value counts.
func (p *Predicate) Normalize() {
	if p.Left > p.Right {
		p.Left, p.Right = p.Right, p.Left
		p.LeftDistinct, p.RightDistinct = p.RightDistinct, p.LeftDistinct
		p.LeftHist, p.RightHist = p.RightHist, p.LeftHist
	}
	if p.Selectivity == 0 {
		d := math.Max(p.LeftDistinct, p.RightDistinct)
		if d >= 1 {
			p.Selectivity = 1 / d
		} else {
			p.Selectivity = 1
		}
	}
}

// Query is a select–project–join query: a set of relations and the join
// predicates linking them. The number of joins N is len(Predicates) in
// the join-graph sense; the paper's N counts joins, so a connected query
// over k relations has N = k-1 spanning joins plus any extra predicates.
type Query struct {
	Relations  []Relation
	Predicates []Predicate
}

// NumRelations returns the number of joining relations (the paper's N+1).
func (q *Query) NumRelations() int { return len(q.Relations) }

// Validate checks structural invariants: at least one relation, positive
// cardinalities, selectivities in range, predicate endpoints in range and
// distinct endpoints.
func (q *Query) Validate() error {
	if len(q.Relations) == 0 {
		return errors.New("catalog: query has no relations")
	}
	for i, r := range q.Relations {
		if r.Cardinality <= 0 {
			return fmt.Errorf("catalog: relation %d (%s) has non-positive cardinality %d", i, r.Name, r.Cardinality)
		}
		for j, s := range r.Selections {
			if s.Selectivity <= 0 || s.Selectivity > 1 {
				return fmt.Errorf("catalog: relation %d selection %d has selectivity %g outside (0,1]", i, j, s.Selectivity)
			}
		}
	}
	n := RelID(len(q.Relations))
	for i, p := range q.Predicates {
		if p.Left < 0 || p.Left >= n || p.Right < 0 || p.Right >= n {
			return fmt.Errorf("catalog: predicate %d references relation out of range [0,%d)", i, n)
		}
		if p.Left == p.Right {
			return fmt.Errorf("catalog: predicate %d joins relation %d with itself", i, p.Left)
		}
		if p.Selectivity < 0 || p.Selectivity > 1 {
			return fmt.Errorf("catalog: predicate %d has selectivity %g outside [0,1]", i, p.Selectivity)
		}
		if p.Selectivity == 0 && p.LeftDistinct < 1 && p.RightDistinct < 1 {
			return fmt.Errorf("catalog: predicate %d has neither selectivity nor distinct counts", i)
		}
		if err := p.LeftHist.Validate(); err != nil {
			return fmt.Errorf("catalog: predicate %d left histogram: %w", i, err)
		}
		if err := p.RightHist.Validate(); err != nil {
			return fmt.Errorf("catalog: predicate %d right histogram: %w", i, err)
		}
	}
	return nil
}

// Normalize normalizes every predicate (endpoint ordering, derived
// selectivities) in place.
func (q *Query) Normalize() {
	for i := range q.Predicates {
		q.Predicates[i].Normalize()
	}
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := &Query{
		Relations:  make([]Relation, len(q.Relations)),
		Predicates: make([]Predicate, len(q.Predicates)),
	}
	copy(c.Predicates, q.Predicates)
	for i, r := range q.Relations {
		c.Relations[i] = r
		c.Relations[i].Selections = append([]Selection(nil), r.Selections...)
	}
	return c
}

// RelationName returns the relation's name or a positional fallback.
func (q *Query) RelationName(id RelID) string {
	if int(id) < len(q.Relations) && q.Relations[id].Name != "" {
		return q.Relations[id].Name
	}
	return fmt.Sprintf("R%d", id)
}
