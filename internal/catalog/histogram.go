package catalog

import (
	"errors"
	"fmt"
	"math"
)

// Histogram is an equi-width frequency histogram over a join column's
// integer domain [0, Domain): bucket b covers values
// [b·Domain/len(Counts), (b+1)·Domain/len(Counts)) and Counts[b] is the
// number of rows falling in it.
//
// Histograms refine the flat distinct-count model: under skew (a few
// hot values carrying most rows) the containment assumption
// J = 1/max(D_l, D_r) underestimates join results badly, while
// per-bucket estimation tracks them. Predicates may carry a histogram
// per side; the estimator uses them when both sides have one with the
// same domain and bucket count, and falls back to distinct counts
// otherwise.
type Histogram struct {
	// Domain is the number of possible column values.
	Domain int64
	// Counts holds one row count per bucket.
	Counts []float64
}

// Validate checks structural sanity.
func (h *Histogram) Validate() error {
	if h == nil {
		return nil
	}
	if h.Domain < 1 {
		return fmt.Errorf("catalog: histogram domain %d < 1", h.Domain)
	}
	if len(h.Counts) == 0 {
		return errors.New("catalog: histogram has no buckets")
	}
	if int64(len(h.Counts)) > h.Domain {
		return fmt.Errorf("catalog: %d buckets over a domain of %d", len(h.Counts), h.Domain)
	}
	for i, c := range h.Counts {
		if c < 0 {
			return fmt.Errorf("catalog: bucket %d has negative count %g", i, c)
		}
	}
	return nil
}

// Rows returns the total row count.
func (h *Histogram) Rows() float64 {
	t := 0.0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// bucketWidth returns the value width of bucket b (the last bucket
// absorbs the remainder).
func (h *Histogram) bucketWidth(b int) float64 {
	n := int64(len(h.Counts))
	base := h.Domain / n
	if int64(b) == n-1 {
		return float64(base + h.Domain%n)
	}
	return float64(base)
}

// Aligned reports whether two histograms share domain and bucketing, so
// they can be joined bucket-by-bucket.
func (h *Histogram) Aligned(o *Histogram) bool {
	return h != nil && o != nil && h.Domain == o.Domain && len(h.Counts) == len(o.Counts)
}

// JoinSelectivity estimates the equi-join selectivity between two
// aligned histograms: expected matches per bucket are
// count_l·count_r/width (uniform within the bucket), and the
// selectivity is total matches / (rows_l · rows_r). Returns ok=false
// for misaligned or empty inputs.
func (h *Histogram) JoinSelectivity(o *Histogram) (float64, bool) {
	if !h.Aligned(o) {
		return 0, false
	}
	rl, rr := h.Rows(), o.Rows()
	if rl <= 0 || rr <= 0 {
		return 0, false
	}
	matches := 0.0
	for b := range h.Counts {
		w := h.bucketWidth(b)
		if w <= 0 {
			continue
		}
		matches += h.Counts[b] * o.Counts[b] / w
	}
	return matches / (rl * rr), true
}

// DistinctEstimate estimates the number of distinct values present:
// per bucket, the expected count of occupied values given c rows thrown
// uniformly at w slots, w·(1 − (1 − 1/w)^c).
func (h *Histogram) DistinctEstimate() float64 {
	d := 0.0
	for b, c := range h.Counts {
		w := h.bucketWidth(b)
		if w <= 0 || c <= 0 {
			continue
		}
		d += w * (1 - pow1m(1/w, c))
	}
	if d < 1 {
		return 1
	}
	return d
}

// pow1m computes (1−x)^c accurately for small x via expm1/log1p.
func pow1m(x, c float64) float64 {
	if x >= 1 {
		return 0
	}
	return math.Exp(c * math.Log1p(-x))
}
