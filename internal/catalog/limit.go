package catalog

import (
	"errors"
	"io"
)

// ErrTooLarge reports that an input stream exceeded the size cap the
// caller imposed on it. The serve boundary maps it to HTTP 413; the
// query readers (qdsl.ParseLimit, qfile.ReadLimit) return it wrapped,
// so test with errors.Is.
var ErrTooLarge = errors.New("catalog: input exceeds size limit")

// CapReader wraps r so that reading more than max bytes fails with
// ErrTooLarge instead of silently truncating (the io.LimitReader
// behaviour, which would let a parser accept the valid prefix of an
// oversized — possibly hostile — body). A non-positive max means no
// cap.
func CapReader(r io.Reader, max int64) io.Reader {
	if max <= 0 {
		return r
	}
	return &capReader{r: r, remaining: max}
}

type capReader struct {
	r         io.Reader
	remaining int64
	breached  bool
}

func (c *capReader) Read(p []byte) (int, error) {
	if c.breached {
		return 0, ErrTooLarge
	}
	if c.remaining <= 0 {
		// The cap is exactly consumed. Probe the underlying stream for
		// one more byte so an exactly-cap-sized input reads cleanly to
		// EOF while a cap-plus-tail input fails with ErrTooLarge.
		var one [1]byte
		n, err := c.r.Read(one[:])
		if n > 0 {
			c.breached = true
			return 0, ErrTooLarge
		}
		return 0, err
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.r.Read(p)
	c.remaining -= int64(n)
	return n, err
}
