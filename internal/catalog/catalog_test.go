package catalog

import (
	"strings"
	"testing"
)

func validQuery() *Query {
	return &Query{
		Relations: []Relation{
			{Name: "a", Cardinality: 100},
			{Name: "b", Cardinality: 200, Selections: []Selection{{Selectivity: 0.5}}},
			{Name: "c", Cardinality: 300},
		},
		Predicates: []Predicate{
			{Left: 0, Right: 1, LeftDistinct: 10, RightDistinct: 20},
			{Left: 2, Right: 1, LeftDistinct: 30, RightDistinct: 40},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validQuery().Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Query)
		want   string
	}{
		{"no relations", func(q *Query) { q.Relations = nil }, "no relations"},
		{"zero cardinality", func(q *Query) { q.Relations[0].Cardinality = 0 }, "non-positive cardinality"},
		{"negative cardinality", func(q *Query) { q.Relations[1].Cardinality = -5 }, "non-positive cardinality"},
		{"bad selection", func(q *Query) { q.Relations[1].Selections[0].Selectivity = 1.5 }, "selectivity"},
		{"zero selection", func(q *Query) { q.Relations[1].Selections[0].Selectivity = 0 }, "selectivity"},
		{"predicate out of range", func(q *Query) { q.Predicates[0].Right = 9 }, "out of range"},
		{"negative endpoint", func(q *Query) { q.Predicates[0].Left = -1 }, "out of range"},
		{"self join", func(q *Query) { q.Predicates[0].Right = q.Predicates[0].Left }, "itself"},
		{"bad join selectivity", func(q *Query) { q.Predicates[0].Selectivity = 2 }, "selectivity"},
		{"no stats at all", func(q *Query) {
			q.Predicates[0].LeftDistinct = 0
			q.Predicates[0].RightDistinct = 0
		}, "neither"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := validQuery()
			tc.mutate(q)
			err := q.Validate()
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestEffectiveCardinality(t *testing.T) {
	r := Relation{Cardinality: 1000}
	if got := r.EffectiveCardinality(); got != 1000 {
		t.Fatalf("no selections: got %g, want 1000", got)
	}
	r.Selections = []Selection{{Selectivity: 0.1}, {Selectivity: 0.5}}
	if got := r.EffectiveCardinality(); got != 50 {
		t.Fatalf("two selections: got %g, want 50", got)
	}
	r.Selections = []Selection{{Selectivity: 0.0001}}
	if got := r.EffectiveCardinality(); got != 1 {
		t.Fatalf("floor: got %g, want 1", got)
	}
}

func TestPredicateNormalize(t *testing.T) {
	p := Predicate{Left: 3, Right: 1, LeftDistinct: 7, RightDistinct: 11}
	p.Normalize()
	if p.Left != 1 || p.Right != 3 {
		t.Fatalf("endpoints not ordered: %d, %d", p.Left, p.Right)
	}
	if p.LeftDistinct != 11 || p.RightDistinct != 7 {
		t.Fatalf("distincts not swapped with endpoints: %g, %g", p.LeftDistinct, p.RightDistinct)
	}
	if p.Selectivity != 1.0/11 {
		t.Fatalf("derived selectivity: got %g, want %g", p.Selectivity, 1.0/11)
	}
}

func TestPredicateNormalizeKeepsExplicitSelectivity(t *testing.T) {
	p := Predicate{Left: 0, Right: 1, Selectivity: 0.25}
	p.Normalize()
	if p.Selectivity != 0.25 {
		t.Fatalf("explicit selectivity overwritten: %g", p.Selectivity)
	}
}

func TestPredicateNormalizeNoStats(t *testing.T) {
	p := Predicate{Left: 0, Right: 1}
	p.Normalize()
	if p.Selectivity != 1 {
		t.Fatalf("selectivity without stats should default to 1, got %g", p.Selectivity)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	q := validQuery()
	q.Normalize()
	first := *q.Clone()
	q.Normalize()
	for i := range q.Predicates {
		if q.Predicates[i] != first.Predicates[i] {
			t.Fatalf("normalize not idempotent at predicate %d: %+v vs %+v", i, q.Predicates[i], first.Predicates[i])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := validQuery()
	c := q.Clone()
	c.Relations[1].Selections[0].Selectivity = 0.9
	c.Predicates[0].Left = 2
	if q.Relations[1].Selections[0].Selectivity == 0.9 {
		t.Fatal("clone shares selection slice with original")
	}
	if q.Predicates[0].Left == 2 {
		t.Fatal("clone shares predicate slice with original")
	}
}

func TestRelationName(t *testing.T) {
	q := validQuery()
	if got := q.RelationName(1); got != "b" {
		t.Fatalf("named relation: got %q", got)
	}
	q.Relations[1].Name = ""
	if got := q.RelationName(1); got != "R1" {
		t.Fatalf("fallback name: got %q", got)
	}
	if got := q.RelationName(77); got != "R77" {
		t.Fatalf("out-of-range name: got %q", got)
	}
}

func TestNumRelations(t *testing.T) {
	if got := validQuery().NumRelations(); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
}
