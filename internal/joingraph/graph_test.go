package joingraph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
)

// chainQuery builds a chain R0–R1–…–R(n-1).
func chainQuery(n int) *catalog.Query {
	q := &catalog.Query{}
	for i := 0; i < n; i++ {
		q.Relations = append(q.Relations, catalog.Relation{Cardinality: 100})
	}
	for i := 0; i+1 < n; i++ {
		q.Predicates = append(q.Predicates, catalog.Predicate{
			Left: catalog.RelID(i), Right: catalog.RelID(i + 1),
			LeftDistinct: 10, RightDistinct: 10,
		})
	}
	return q
}

func TestNewMergesParallelPredicates(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{{Cardinality: 10}, {Cardinality: 20}},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, Selectivity: 0.5},
			{Left: 1, Right: 0, Selectivity: 0.1},
		},
	}
	g := New(q)
	if g.NumEdges() != 1 {
		t.Fatalf("parallel predicates not merged: %d edges", g.NumEdges())
	}
	e, ok := g.EdgeBetween(0, 1)
	if !ok {
		t.Fatal("merged edge missing")
	}
	if e.Selectivity != 0.05 {
		t.Fatalf("merged selectivity: got %g, want 0.05", e.Selectivity)
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New(chainQuery(4))
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(3) != 1 {
		t.Fatalf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(3))
	}
	n := g.Neighbors(1, nil)
	sort.Slice(n, func(i, j int) bool { return n[i] < n[j] })
	if len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Fatalf("neighbors of 1: %v", n)
	}
}

func TestConnectedAndEdgeBetween(t *testing.T) {
	g := New(chainQuery(4))
	if !g.Connected(1, 2) || g.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	if _, ok := g.EdgeBetween(0, 2); ok {
		t.Fatal("phantom edge 0-2")
	}
}

func TestComponents(t *testing.T) {
	q := chainQuery(6)
	// Break the chain between 2 and 3.
	q.Predicates = append(q.Predicates[:2], q.Predicates[3:]...)
	g := New(q)
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	want := [][]catalog.RelID{{0, 1, 2}, {3, 4, 5}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d: %v", i, comps[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d: %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestJoinsIntoAndSelectivityBetween(t *testing.T) {
	g := New(chainQuery(4))
	inSet := makeBitset(4, 0)
	if !g.JoinsInto(1, inSet) || g.JoinsInto(2, inSet) {
		t.Fatal("JoinsInto wrong")
	}
	if s := g.SelectivityBetween(1, inSet); s != 0.1 {
		t.Fatalf("selectivity into set: got %g, want 0.1", s)
	}
	if s := g.SelectivityBetween(3, inSet); s != 1 {
		t.Fatalf("cross-product selectivity: got %g, want 1", s)
	}
}

// cycleQuery builds a 4-cycle with one expensive and three cheap edges.
func cycleQuery() *catalog.Query {
	q := &catalog.Query{}
	for i := 0; i < 4; i++ {
		q.Relations = append(q.Relations, catalog.Relation{Cardinality: 100})
	}
	sel := []float64{0.01, 0.02, 0.03, 0.9} // edge 3-0 is worst
	pairs := [][2]catalog.RelID{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	for i, p := range pairs {
		q.Predicates = append(q.Predicates, catalog.Predicate{
			Left: p[0], Right: p[1], Selectivity: sel[i],
		})
	}
	return q
}

func TestMinimumSpanningTreeDropsWorstEdge(t *testing.T) {
	g := New(cycleQuery())
	tree := g.MinimumSpanningTree(0, SelectivityWeight)
	if len(tree.Vertices) != 4 {
		t.Fatalf("MST spans %d vertices, want 4", len(tree.Vertices))
	}
	// The 0.9 edge (3-0) must be absent: 3's parent chain must reach 0
	// through 2 and 1.
	if tree.Parent[3] == 0 {
		t.Fatal("MST kept the most selective... the worst edge 3-0")
	}
	// Every non-root vertex has a parent edge with weight < 0.9.
	for _, v := range tree.Vertices {
		if tree.IsRoot(v) {
			continue
		}
		if tree.EdgeSelectivity(v) >= 0.9 {
			t.Fatalf("vertex %d uses the worst edge", v)
		}
	}
}

func TestBFSTreeSpans(t *testing.T) {
	g := New(chainQuery(5))
	tree := g.BFSTree(2)
	if len(tree.Vertices) != 5 {
		t.Fatalf("BFS tree spans %d, want 5", len(tree.Vertices))
	}
	if !tree.IsRoot(2) {
		t.Fatal("root not marked")
	}
	if tree.Parent[0] != 1 || tree.Parent[4] != 3 {
		t.Fatalf("chain parents wrong: %v", tree.Parent)
	}
}

// treeEdges collects the undirected (min,max) edge set of a tree.
func treeEdges(tr *Tree) map[[2]catalog.RelID]bool {
	out := make(map[[2]catalog.RelID]bool)
	for _, v := range tr.Vertices {
		if tr.IsRoot(v) {
			continue
		}
		a, b := v, tr.Parent[v]
		if a > b {
			a, b = b, a
		}
		out[[2]catalog.RelID{a, b}] = true
	}
	return out
}

func TestRerootPreservesEdges(t *testing.T) {
	g := New(cycleQuery())
	tree := g.MinimumSpanningTree(0, SelectivityWeight)
	before := treeEdges(tree)
	for v := catalog.RelID(0); v < 4; v++ {
		rt := tree.Reroot(v)
		if !rt.IsRoot(v) {
			t.Fatalf("reroot at %d: root not set", v)
		}
		after := treeEdges(rt)
		if len(after) != len(before) {
			t.Fatalf("reroot at %d changed edge count: %d vs %d", v, len(after), len(before))
		}
		for e := range before {
			if !after[e] {
				t.Fatalf("reroot at %d lost edge %v", v, e)
			}
		}
	}
}

func TestRerootOutsideTreePanics(t *testing.T) {
	q := chainQuery(6)
	q.Predicates = q.Predicates[:2] // relations 3..5 disconnected
	g := New(q)
	tree := g.BFSTree(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic rerooting outside tree")
		}
	}()
	tree.Reroot(5)
}

// randomConnectedQuery builds a random connected query for property tests.
func randomConnectedQuery(rng *rand.Rand, n int) *catalog.Query {
	q := &catalog.Query{}
	for i := 0; i < n; i++ {
		q.Relations = append(q.Relations, catalog.Relation{Cardinality: int64(1 + rng.Intn(1000))})
	}
	for i := 1; i < n; i++ {
		q.Predicates = append(q.Predicates, catalog.Predicate{
			Left: catalog.RelID(rng.Intn(i)), Right: catalog.RelID(i),
			LeftDistinct:  float64(1 + rng.Intn(100)),
			RightDistinct: float64(1 + rng.Intn(100)),
		})
	}
	// Extra edges.
	for k := 0; k < n/2; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			q.Predicates = append(q.Predicates, catalog.Predicate{
				Left: catalog.RelID(a), Right: catalog.RelID(b),
				LeftDistinct: 5, RightDistinct: 5,
			})
		}
	}
	q.Normalize()
	return q
}

func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := 2 + int(size%30)
		rng := rand.New(rand.NewSource(seed))
		g := New(randomConnectedQuery(rng, n))
		comps := g.Components()
		seen := make(map[catalog.RelID]int)
		for _, c := range comps {
			for _, v := range c {
				seen[v]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTSpansProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := 2 + int(size%30)
		rng := rand.New(rand.NewSource(seed))
		g := New(randomConnectedQuery(rng, n))
		tree := g.MinimumSpanningTree(0, SelectivityWeight)
		if len(tree.Vertices) != n {
			return false
		}
		// n-1 parent edges.
		edges := 0
		for _, v := range tree.Vertices {
			if !tree.IsRoot(v) {
				edges++
			}
		}
		return edges == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachIncident(t *testing.T) {
	g := New(chainQuery(4))
	inSet := makeBitset(4, 1, 2)
	var got []catalog.RelID
	g.ForEachIncident(2, inSet, func(e Edge, other catalog.RelID) {
		got = append(got, other)
	})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("incident into set: %v, want [1]", got)
	}
}

// makeBitset builds a Bitset of capacity n with the given members set.
func makeBitset(n int, members ...int) Bitset {
	b := NewBitset(n)
	for _, m := range members {
		b.Set(catalog.RelID(m))
	}
	return b
}
