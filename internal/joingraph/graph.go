// Package joingraph provides the join-graph abstraction used throughout
// the optimizer: adjacency between relations induced by join predicates,
// connected components, spanning trees, and rooted-tree views.
//
// A query's join graph has one vertex per relation and one edge per join
// predicate (parallel predicates between the same pair are merged into a
// single edge whose selectivity is the product of the predicates').
package joingraph

import (
	"fmt"
	"math"
	"sort"

	"joinopt/internal/catalog"
)

// Edge is an undirected edge of the join graph. From < To always holds.
type Edge struct {
	From, To catalog.RelID
	// Selectivity is the combined join selectivity of all predicates
	// between From and To.
	Selectivity float64
	// FromDistinct and ToDistinct carry the distinct-value counts of
	// the join columns on each endpoint (of the first predicate merged
	// into this edge; subsequent parallel predicates only multiply into
	// Selectivity).
	FromDistinct, ToDistinct float64
	// FromHist and ToHist carry the optional join-column histograms of
	// the first predicate merged into this edge.
	FromHist, ToHist *catalog.Histogram
}

// Graph is an immutable join graph over n relations.
type Graph struct {
	n     int
	edges []Edge
	// adj[v] lists indices into edges for every edge incident to v.
	adj [][]int
	// csr is the flat bitset adjacency view (see bitset.go), built once
	// at construction and shared by every frontier-scanning consumer.
	csr *CSR
}

// New builds a join graph from a query's predicates. Parallel predicates
// are merged; selectivities multiply.
func New(q *catalog.Query) *Graph {
	g := &Graph{n: q.NumRelations()}
	index := make(map[[2]catalog.RelID]int)
	for _, p := range q.Predicates {
		p.Normalize()
		key := [2]catalog.RelID{p.Left, p.Right}
		if ei, ok := index[key]; ok {
			g.edges[ei].Selectivity *= p.Selectivity
			continue
		}
		index[key] = len(g.edges)
		g.edges = append(g.edges, Edge{
			From:         p.Left,
			To:           p.Right,
			Selectivity:  p.Selectivity,
			FromDistinct: p.LeftDistinct,
			ToDistinct:   p.RightDistinct,
			FromHist:     p.LeftHist,
			ToHist:       p.RightHist,
		})
	}
	g.buildAdjacency()
	g.buildCSR()
	return g
}

func (g *Graph) buildAdjacency() {
	g.adj = make([][]int, g.n)
	for ei, e := range g.edges {
		g.adj[e.From] = append(g.adj[e.From], ei)
		g.adj[e.To] = append(g.adj[e.To], ei)
	}
}

// NumVertices returns the number of relations.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of (merged) join edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the merged edge list. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Degree returns the number of relations that relation v joins with.
func (g *Graph) Degree(v catalog.RelID) int { return len(g.adj[v]) }

// Neighbors appends the neighbors of v to dst and returns it.
func (g *Graph) Neighbors(v catalog.RelID, dst []catalog.RelID) []catalog.RelID {
	for _, ei := range g.adj[v] {
		e := g.edges[ei]
		if e.From == v {
			dst = append(dst, e.To)
		} else {
			dst = append(dst, e.From)
		}
	}
	return dst
}

// EdgeBetween returns the merged edge between u and v, if any.
func (g *Graph) EdgeBetween(u, v catalog.RelID) (Edge, bool) {
	// Scan the shorter adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, ei := range g.adj[u] {
		e := g.edges[ei]
		if (e.From == u && e.To == v) || (e.From == v && e.To == u) {
			return e, true
		}
	}
	return Edge{}, false
}

// Connected reports whether u and v share an edge.
func (g *Graph) Connected(u, v catalog.RelID) bool {
	_, ok := g.EdgeBetween(u, v)
	return ok
}

// SelectivityBetween returns the product of the join selectivities of all
// edges between v and any relation in the set. A relation with no edge
// into the set yields 1 (pure cross product).
func (g *Graph) SelectivityBetween(v catalog.RelID, set Bitset) float64 {
	sel := 1.0
	for _, ei := range g.adj[v] {
		e := g.edges[ei]
		other := e.From
		if other == v {
			other = e.To
		}
		if set.Test(other) {
			sel *= e.Selectivity
		}
	}
	return sel
}

// ForEachIncident invokes f for every edge incident to v whose other
// endpoint is in set, passing the edge and that endpoint. Edges are
// visited in merged-edge index order, so callers' floating-point
// accumulations are order-stable across views.
//
//ljqlint:hotpath
func (g *Graph) ForEachIncident(v catalog.RelID, set Bitset, f func(Edge, catalog.RelID)) {
	for _, ei := range g.adj[v] {
		e := g.edges[ei]
		other := e.From
		if other == v {
			other = e.To
		}
		if set.Test(other) {
			f(e, other)
		}
	}
}

// JoinsInto reports whether v joins with at least one relation in set:
// a word-AND over v's precomputed neighbor mask, independent of degree.
//
//ljqlint:hotpath
func (g *Graph) JoinsInto(v catalog.RelID, set Bitset) bool {
	return g.csr.JoinsInto(v, set)
}

// Components returns the connected components of the graph, each as a
// sorted slice of relation IDs. Components are ordered by their smallest
// member.
func (g *Graph) Components() [][]catalog.RelID {
	seen := make([]bool, g.n)
	var comps [][]catalog.RelID
	queue := make([]catalog.RelID, 0, g.n)
	var nbuf []catalog.RelID
	for start := 0; start < g.n; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue = queue[:0]
		queue = append(queue, catalog.RelID(start))
		comp := []catalog.RelID{catalog.RelID(start)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			nbuf = g.Neighbors(v, nbuf[:0])
			for _, w := range nbuf {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
					comp = append(comp, w)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// Tree is a rooted spanning tree of (a component of) a join graph.
// Parent[root] == -1; vertices not in the tree have Parent == -2.
type Tree struct {
	Root catalog.RelID
	// Parent maps each vertex to its parent (indexed by RelID over the
	// whole graph's vertex range).
	Parent []catalog.RelID
	// Children lists each vertex's children.
	Children [][]catalog.RelID
	// ParentEdge[v] is the graph edge connecting v to Parent[v]
	// (undefined for the root and for absent vertices).
	ParentEdge []Edge
	// Vertices lists the tree's vertices in BFS order from the root.
	Vertices []catalog.RelID
}

const (
	parentRoot   = catalog.RelID(-1)
	parentAbsent = catalog.RelID(-2)
)

// InTree reports whether v belongs to the tree.
func (t *Tree) InTree(v catalog.RelID) bool { return t.Parent[v] != parentAbsent }

// IsRoot reports whether v is the tree's root.
func (t *Tree) IsRoot(v catalog.RelID) bool { return t.Parent[v] == parentRoot }

// WeightFunc assigns a weight to an edge for spanning-tree selection.
type WeightFunc func(Edge) float64

// SelectivityWeight weighs an edge by its join selectivity — the weight
// recommended by Krishnamurthy, Boral & Zaniolo and confirmed best by the
// paper's Table 2 (criterion 3).
func SelectivityWeight(e Edge) float64 { return e.Selectivity }

// MinimumSpanningTree computes a minimum spanning tree (Prim's algorithm)
// of the component containing root, using the supplied edge weights, and
// returns it rooted at root.
func (g *Graph) MinimumSpanningTree(root catalog.RelID, weight WeightFunc) *Tree {
	t := newTree(g.n, root)
	inTree := make([]bool, g.n)
	inTree[root] = true

	// best[v] is the cheapest edge connecting v to the tree so far.
	type cand struct {
		edge   Edge
		parent catalog.RelID
		w      float64
		ok     bool
	}
	best := make([]cand, g.n)
	relax := func(v catalog.RelID) {
		for _, ei := range g.adj[v] {
			e := g.edges[ei]
			other := e.From
			if other == v {
				other = e.To
			}
			if inTree[other] {
				continue
			}
			w := weight(e)
			if !best[other].ok || w < best[other].w {
				best[other] = cand{edge: e, parent: v, w: w, ok: true}
			}
		}
	}
	relax(root)
	for {
		// Pick the cheapest frontier vertex (O(V) scan; V ≤ 101 here).
		next := catalog.RelID(-1)
		bw := math.Inf(1)
		for v := 0; v < g.n; v++ {
			if !inTree[v] && best[v].ok && best[v].w < bw {
				bw = best[v].w
				next = catalog.RelID(v)
			}
		}
		if next < 0 {
			break
		}
		c := best[next]
		inTree[next] = true
		t.attach(next, c.parent, c.edge)
		relax(next)
	}
	return t
}

// BFSTree returns the breadth-first spanning tree of the component
// containing root (edge weights ignored).
func (g *Graph) BFSTree(root catalog.RelID) *Tree {
	t := newTree(g.n, root)
	seen := make([]bool, g.n)
	seen[root] = true
	queue := []catalog.RelID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ei := range g.adj[v] {
			e := g.edges[ei]
			other := e.From
			if other == v {
				other = e.To
			}
			if seen[other] {
				continue
			}
			seen[other] = true
			t.attach(other, v, e)
			queue = append(queue, other)
		}
	}
	return t
}

func newTree(n int, root catalog.RelID) *Tree {
	t := &Tree{
		Root:       root,
		Parent:     make([]catalog.RelID, n),
		Children:   make([][]catalog.RelID, n),
		ParentEdge: make([]Edge, n),
	}
	for i := range t.Parent {
		t.Parent[i] = parentAbsent
	}
	t.Parent[root] = parentRoot
	t.Vertices = append(t.Vertices, root)
	return t
}

// attach adds v to the tree under parent via edge e.
func (t *Tree) attach(v, parent catalog.RelID, e Edge) {
	t.Parent[v] = parent
	t.Children[parent] = append(t.Children[parent], v)
	t.ParentEdge[v] = e
	// newTree seeds Vertices with the root; avoid double-adding it.
	if v != t.Root {
		t.Vertices = append(t.Vertices, v)
	}
}

// Reroot returns the same undirected tree re-rooted at newRoot. The
// vertex set is unchanged.
func (t *Tree) Reroot(newRoot catalog.RelID) *Tree {
	if !t.InTree(newRoot) {
		panic(fmt.Sprintf("joingraph: reroot at vertex %d outside tree", newRoot))
	}
	n := len(t.Parent)
	// Collect undirected adjacency of the tree.
	type link struct {
		to   catalog.RelID
		edge Edge
	}
	adj := make([][]link, n)
	for _, v := range t.Vertices {
		if t.IsRoot(v) {
			continue
		}
		p := t.Parent[v]
		e := t.ParentEdge[v]
		adj[v] = append(adj[v], link{p, e})
		adj[p] = append(adj[p], link{v, e})
	}
	nt := newTree(n, newRoot)
	seen := make([]bool, n)
	seen[newRoot] = true
	queue := []catalog.RelID{newRoot}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, l := range adj[v] {
			if seen[l.to] {
				continue
			}
			seen[l.to] = true
			nt.attach(l.to, v, l.edge)
			queue = append(queue, l.to)
		}
	}
	return nt
}

// EdgeSelectivity returns the selectivity of the edge joining v to its
// parent in the tree.
func (t *Tree) EdgeSelectivity(v catalog.RelID) float64 {
	return t.ParentEdge[v].Selectivity
}
