// Bitset and CSR: the packed adjacency view of a join graph.
//
// Every frontier scan in the optimizer — "does relation v join the set
// of relations already placed?" — used to walk a []bool membership
// slice per candidate. The Bitset packs membership 64 relations per
// word, and the CSR view precomputes each vertex's neighbor mask, so a
// frontier test collapses to a handful of word ANDs regardless of
// degree. The CSR arrays additionally lay the merged adjacency flat
// (offsets + neighbor ids + edge indices + static selectivities), the
// cache-friendly layout the greedy tier and the search strategies scan.
//
// The view is built once per query inside New and shared by everything
// that consumes the graph: fingerprint canonicalization, the greedy
// planner, the move-based search strategies' validity scans, and the
// estimator's prefix frontier.
package joingraph

import (
	"math/bits"

	"joinopt/internal/catalog"
)

// Bitset is a fixed-capacity set of relation IDs, packed 64 per word.
// Allocate with NewBitset; the zero value is an empty set of capacity 0.
type Bitset []uint64

// NewBitset returns an empty set able to hold relations [0, n).
func NewBitset(n int) Bitset { return make(Bitset, (n+63)>>6) }

// Reset clears the set in place.
//
//ljqlint:hotpath
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Set adds relation id to the set.
//
//ljqlint:hotpath
func (b Bitset) Set(id catalog.RelID) { b[id>>6] |= 1 << uint(id&63) }

// Clear removes relation id from the set.
//
//ljqlint:hotpath
func (b Bitset) Clear(id catalog.RelID) { b[id>>6] &^= 1 << uint(id&63) }

// Test reports whether relation id is in the set.
//
//ljqlint:hotpath
func (b Bitset) Test(id catalog.RelID) bool { return b[id>>6]&(1<<uint(id&63)) != 0 }

// Intersects reports whether b and o share any member. The sets must
// have been sized for the same relation count.
//
//ljqlint:hotpath
func (b Bitset) Intersects(o Bitset) bool {
	for i, w := range b {
		if w&o[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of members.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// CopyFrom overwrites b with o's members. Same-capacity sets only.
//
//ljqlint:hotpath
func (b Bitset) CopyFrom(o Bitset) { copy(b, o) }

// CSR is the flat adjacency view of a Graph: the incidences of vertex v
// live at Nbr/EdgeIdx/Sel[Off[v]:Off[v+1]], and NeighborMask(v) is v's
// neighbor set as a Bitset. Built once per query by New; immutable.
type CSR struct {
	words int
	// Off has one entry per vertex plus a terminator.
	Off []int32
	// Nbr lists neighbor vertex ids, grouped by vertex, in merged-edge
	// index order within each group (the same order Graph.Neighbors and
	// ForEachIncident visit, so float accumulation orders are preserved
	// when callers switch views).
	Nbr []int32
	// EdgeIdx holds the index into Graph.Edges() of each incidence.
	EdgeIdx []int32
	// Sel duplicates each incident edge's merged static selectivity next
	// to the neighbor id: the greedy tier's inner loop reads only these
	// two arrays.
	Sel []float64
	// masks packs each vertex's neighbor Bitset, words words per vertex.
	masks []uint64
}

// NeighborMask returns v's neighbor set. Callers must not modify it.
//
//ljqlint:hotpath
func (c *CSR) NeighborMask(v catalog.RelID) Bitset {
	return Bitset(c.masks[int(v)*c.words : (int(v)+1)*c.words])
}

// JoinsInto reports whether v has at least one edge into set: a word-AND
// over v's neighbor mask, independent of v's degree.
//
//ljqlint:hotpath
func (c *CSR) JoinsInto(v catalog.RelID, set Bitset) bool {
	off := int(v) * c.words
	for i := 0; i < c.words; i++ {
		if c.masks[off+i]&set[i] != 0 {
			return true
		}
	}
	return false
}

// buildCSR lays the merged adjacency flat and precomputes neighbor
// masks. Per-vertex incidence order follows edge index order, matching
// the append order of buildAdjacency.
func (g *Graph) buildCSR() {
	n := g.n
	words := (n + 63) >> 6
	c := &CSR{
		words:   words,
		Off:     make([]int32, n+1),
		Nbr:     make([]int32, 2*len(g.edges)),
		EdgeIdx: make([]int32, 2*len(g.edges)),
		Sel:     make([]float64, 2*len(g.edges)),
		masks:   make([]uint64, n*words),
	}
	for _, e := range g.edges {
		c.Off[e.From+1]++
		c.Off[e.To+1]++
	}
	for v := 0; v < n; v++ {
		c.Off[v+1] += c.Off[v]
	}
	cur := make([]int32, n)
	copy(cur, c.Off[:n])
	put := func(v, other catalog.RelID, ei int, sel float64) {
		c.Nbr[cur[v]] = int32(other)
		c.EdgeIdx[cur[v]] = int32(ei)
		c.Sel[cur[v]] = sel
		cur[v]++
		c.masks[int(v)*words+int(other)>>6] |= 1 << uint(other&63)
	}
	for ei, e := range g.edges {
		put(e.From, e.To, ei, e.Selectivity)
		put(e.To, e.From, ei, e.Selectivity)
	}
	g.csr = c
}

// CSR returns the graph's flat adjacency view.
func (g *Graph) CSR() *CSR { return g.csr }
