package joinopt_test

import (
	"fmt"

	"joinopt"
)

// ExampleOptimize shows the minimal flow: describe a query by its
// statistics and optimize it with the paper's recommended strategy.
func ExampleOptimize() {
	q := &joinopt.Query{
		Relations: []joinopt.Relation{
			{Name: "orders", Cardinality: 100000},
			{Name: "customers", Cardinality: 5000},
			{Name: "nation", Cardinality: 25},
		},
		Predicates: []joinopt.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 5000, RightDistinct: 5000},
			{Left: 1, Right: 2, LeftDistinct: 25, RightDistinct: 25},
		},
	}
	p, err := joinopt.Optimize(q, joinopt.Options{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d relations joined, cost %.4g\n", len(p.Order()), p.Cost())
	// Output: 3 relations joined, cost 3.15e+05
}

// ExampleOptimalPlan contrasts the randomized strategies with the exact
// DP baseline on a small query, under the static estimator both share.
func ExampleOptimalPlan() {
	q, err := joinopt.GenerateBenchmarkQuery(0, 8, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	best, err := joinopt.OptimalPlan(q.Clone(), nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	p, err := joinopt.Optimize(q, joinopt.Options{StaticEstimator: true, Seed: 3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("IAI within %.2fx of the DP optimum\n", p.Cost()/best.Cost())
	// Output: IAI within 1.00x of the DP optimum
}

// ExampleGenerateBenchmarkQuery synthesizes a query from the paper's §5
// star-biased benchmark.
func ExampleGenerateBenchmarkQuery() {
	q, err := joinopt.GenerateBenchmarkQuery(8, 30, 42) // benchmark 8: star graphs
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d relations, %d join predicates\n", len(q.Relations), len(q.Predicates))
	// Output: 31 relations, 31 join predicates
}

// ExampleNewDatabase runs an optimized plan on synthetic data.
func ExampleNewDatabase() {
	q := &joinopt.Query{
		Relations: []joinopt.Relation{
			{Name: "a", Cardinality: 100},
			{Name: "b", Cardinality: 100},
		},
		Predicates: []joinopt.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 10, RightDistinct: 10},
		},
	}
	p, err := joinopt.Optimize(q, joinopt.Options{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	db, err := joinopt.NewDatabase(q, 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rows, err := joinopt.ExecutePlan(db, p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("executed: %d rows (expected ≈ %d)\n", rows, 100*100/10)
	// Output: executed: 1013 rows (expected ≈ 1000)
}
